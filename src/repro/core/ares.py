"""The ARES framework facade (paper Fig. 2).

``Ares`` chains the three stages end to end:

1. **Profile** — fly benign missions, collect the ESVL dataset
   (:mod:`repro.profiling`).
2. **Identify** — run Algorithm 1 to produce the TSVL
   (:mod:`repro.analysis`).
3. **Exploit** — train an RL agent that manipulates a TSVL variable to
   produce an uncontrolled or controlled failure (:mod:`repro.rl`),
   optionally with a deployed detector in the loop so learned attacks are
   stealthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis.tsvl import TsvlConfig, TsvlResult, generate_tsvl
from repro.core.report import AssessmentReport, ExploitOutcome
from repro.exceptions import AnalysisError
from repro.obs.log import get_logger
from repro.obs.tracing import span as obs_span
from repro.profiling.collector import ProfileCollector, ProfileDataset
from repro.rl.ddpg import DdpgAgent, DdpgConfig
from repro.rl.env import EnvConfig
from repro.rl.envs import ControlledCrashEnv, PathDeviationEnv
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.training import TrainingResult, train_ddpg, train_reinforce

__all__ = ["AresConfig", "Ares"]

_log = get_logger(__name__)

#: Responses used per controller-function kind during identification.
_DEFAULT_RESPONSES = {
    "PID": ["ATT.R", "ATT.P", "ATT.Y"],
    "Sqrt": ["NTUN.VelX", "NTUN.VelY"],
    "SINS": ["GPS.Spd", "GPS.VZ"],
}


@dataclass
class AresConfig:
    """End-to-end configuration for one assessment campaign."""

    controller_kind: str = "PID"
    responses: list[str] = field(default_factory=list)
    #: Default identification config caps the TSVL per response, keeping
    #: campaign output at the paper's compact scale (Table II).
    tsvl: TsvlConfig = field(
        default_factory=lambda: TsvlConfig(max_per_response=4)
    )
    env: EnvConfig = field(default_factory=EnvConfig)
    agent: str = "reinforce"  # or "ddpg"
    episodes: int = 50
    reinforce: ReinforceConfig = field(default_factory=ReinforceConfig)
    ddpg: DdpgConfig = field(default_factory=DdpgConfig)


class Ares:
    """Data-driven vulnerability assessment of one RAV configuration."""

    def __init__(self, config: AresConfig | None = None):
        self.config = config or AresConfig()
        self.dataset: ProfileDataset | None = None
        self.tsvl_result: TsvlResult | None = None
        self.training: dict[str, TrainingResult] = {}

    # ------------------------------------------------------------------ #
    # Stage 1: profiling
    # ------------------------------------------------------------------ #
    def profile(self, missions=None, collector: ProfileCollector | None = None) -> ProfileDataset:
        """Collect the ESVL dataset from benign missions."""
        collector = collector or ProfileCollector(self.config.controller_kind)
        with obs_span(
            "ares.profile", controller=self.config.controller_kind
        ) as profile_span:
            self.dataset = collector.collect(missions=missions)
            profile_span.set("missions", self.dataset.missions_flown)
            profile_span.set("samples", self.dataset.num_samples)
        _log.info(
            "profiled %d missions: %d samples x %d ESVL columns",
            self.dataset.missions_flown, self.dataset.num_samples,
            len(self.dataset.esvl_columns),
        )
        return self.dataset

    # ------------------------------------------------------------------ #
    # Stage 2: identification
    # ------------------------------------------------------------------ #
    def identify(self, dataset: ProfileDataset | None = None) -> TsvlResult:
        """Run Algorithm 1 over the profiling dataset."""
        dataset = dataset or self.dataset
        if dataset is None:
            raise AnalysisError("profile() must run before identify()")
        responses = self.config.responses or _DEFAULT_RESPONSES.get(
            self.config.controller_kind, []
        )
        responses = [r for r in responses if r in dataset.table]
        if not responses:
            raise AnalysisError("no response variables present in the dataset")
        with obs_span(
            "ares.identify", responses=len(responses)
        ) as identify_span:
            self.tsvl_result = generate_tsvl(
                dataset.table, dynamics_variables=responses,
                config=self.config.tsvl,
            )
            identify_span.set("tsvl", len(self.tsvl_result.tsvl))
        return self.tsvl_result

    # ------------------------------------------------------------------ #
    # Stage 3: exploit generation
    # ------------------------------------------------------------------ #
    def _make_env(self, failure: str, variable: str):
        env_config = replace(self.config.env, target_variable=variable)
        if failure == "uncontrolled":
            return PathDeviationEnv(env_config)
        if failure == "controlled":
            return ControlledCrashEnv(env_config)
        raise AnalysisError(f"unknown failure category '{failure}'")

    def _make_agent(self, env):
        if self.config.agent == "reinforce":
            return ReinforceAgent(
                env.observation_space.dim, self.config.env.action_limit,
                self.config.reinforce,
            )
        if self.config.agent == "ddpg":
            return DdpgAgent(
                env.observation_space.dim, self.config.env.action_limit,
                self.config.ddpg,
            )
        raise AnalysisError(f"unknown agent '{self.config.agent}'")

    def exploit(
        self, variable: str | None = None, failure: str = "uncontrolled",
        episodes: int | None = None,
    ) -> TrainingResult:
        """Train an adversarial policy against one target state variable.

        ``variable`` defaults to the first writable TSVL entry.
        """
        if variable is None:
            variable = self._first_attackable_variable()
        env = self._make_env(failure, variable)
        agent = self._make_agent(env)
        episodes = episodes if episodes is not None else self.config.episodes
        _log.info(
            "training %s exploit against %s (%d episodes, %s)",
            failure, variable, episodes, self.config.agent,
        )
        with obs_span(
            "ares.exploit", variable=variable, failure=failure,
            agent=self.config.agent,
        ):
            if self.config.agent == "reinforce":
                result = train_reinforce(env, agent, episodes=episodes)
            else:
                result = train_ddpg(env, agent, episodes=episodes)
        self.training[f"{failure}:{variable}"] = result
        return result

    def _first_attackable_variable(self) -> str:
        if self.tsvl_result is None:
            raise AnalysisError("identify() must run before exploit()")
        from repro.firmware.vehicle import Vehicle
        from repro.sim.config import SimConfig

        probe = Vehicle(SimConfig(seed=0), use_truth_state=True)
        view = probe.compromised_view()
        for name in self.tsvl_result.tsvl:
            if view.can_write(name):
                return name
        raise AnalysisError(
            f"no TSVL entry is writable from the compromised region: "
            f"{self.tsvl_result.tsvl}"
        )

    # ------------------------------------------------------------------ #
    def report(self) -> AssessmentReport:
        """Assemble the campaign's assessment report."""
        report = AssessmentReport(controller_kind=self.config.controller_kind)
        if self.dataset is not None:
            report.esvl_size = len(self.dataset.esvl_columns)
            report.samples = self.dataset.num_samples
            report.missions = self.dataset.missions_flown
        if self.tsvl_result is not None:
            report.tsvl = list(self.tsvl_result.tsvl)
            report.pruned_size = self.tsvl_result.pruning.num_kept
        for key, training in self.training.items():
            failure, _, variable = key.partition(":")
            report.exploits.append(
                ExploitOutcome(
                    failure_category=failure,
                    variable=variable,
                    episodes=len(training.episodes),
                    best_return=training.best_return,
                    improved=training.improved(),
                    any_crash=any(e.crashed for e in training.episodes),
                    any_detection=any(e.detected for e in training.episodes),
                )
            )
        return report
