"""ARES framework core: the profile → identify → exploit pipeline."""

from repro.core.ares import Ares, AresConfig
from repro.core.defense_matrix import (
    DefenseCell,
    DefenseMatrix,
    evaluate_defense_matrix,
)
from repro.core.report import AssessmentReport, ExploitOutcome

__all__ = [
    "Ares",
    "AresConfig",
    "AssessmentReport",
    "DefenseCell",
    "DefenseMatrix",
    "ExploitOutcome",
    "evaluate_defense_matrix",
]
