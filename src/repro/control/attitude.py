"""Attitude control: angle P loops feeding body-rate PIDs.

Implements the rotational half of the paper's Fig. 1 cascade. Each of the
three rotational DoF (roll φ, pitch θ, yaw ψ) has:

* an *angle* proportional controller producing a body-rate target, and
* a *rate* PID (named PIDR / PIDP / PIDY after ArduPilot's dataflash
  messages) producing a normalised torque demand.

The rate PIDs are the paper's primary attack surface: ``PIDR.INTEG`` is
manipulated in Fig. 10, the PIDR input error in Fig. 6, and the PIDR
output scaler in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.control.pid import PIDController, PIDGains
from repro.utils.math3d import constrain, wrap_pi

__all__ = ["AttitudeTargets", "AttitudeController"]


@dataclass
class AttitudeTargets:
    """Desired attitude for one control cycle (the DesR/DesP/DesY logs)."""

    roll: float = 0.0
    pitch: float = 0.0
    yaw: float = 0.0
    throttle: float = 0.0


class AttitudeController:
    """Cascaded angle→rate attitude controller for the three rotational DoF."""

    def __init__(
        self,
        angle_p: float = 4.5,
        rate_max: float = np.deg2rad(360.0),
        roll_rate_gains: PIDGains | None = None,
        pitch_rate_gains: PIDGains | None = None,
        yaw_rate_gains: PIDGains | None = None,
    ):
        self.angle_p = angle_p
        self.rate_max = rate_max
        default_rp = PIDGains(kp=0.135, ki=0.135, kd=0.0036, imax=0.5, filt_hz=20.0)
        default_yaw = PIDGains(kp=0.30, ki=0.06, kd=0.0, imax=0.5, filt_hz=5.0)
        self.pid_roll = PIDController("PIDR", roll_rate_gains or default_rp)
        self.pid_pitch = PIDController("PIDP", pitch_rate_gains or PIDGains(
            kp=default_rp.kp, ki=default_rp.ki, kd=default_rp.kd,
            imax=default_rp.imax, filt_hz=default_rp.filt_hz,
        ))
        self.pid_yaw = PIDController("PIDY", yaw_rate_gains or default_yaw)
        # Traced intermediates of the angle loops.
        self.rate_targets = np.zeros(3)
        self.angle_errors = np.zeros(3)
        self.last_torque_cmd = np.zeros(3)

    @property
    def rate_pids(self) -> dict[str, PIDController]:
        """Rate PIDs keyed by their dataflash names."""
        return {"PIDR": self.pid_roll, "PIDP": self.pid_pitch, "PIDY": self.pid_yaw}

    def reset(self) -> None:
        """Reset all PID state and traced intermediates."""
        for pid in (self.pid_roll, self.pid_pitch, self.pid_yaw):
            pid.reset()
        self.rate_targets = np.zeros(3)
        self.angle_errors = np.zeros(3)
        self.last_torque_cmd = np.zeros(3)

    def update(
        self,
        targets: AttitudeTargets,
        euler: tuple[float, float, float],
        gyro: np.ndarray,
        dt: float,
    ) -> np.ndarray:
        """One attitude-control cycle.

        Parameters
        ----------
        targets:
            Desired roll/pitch/yaw (rad).
        euler:
            Estimated (roll, pitch, yaw) (rad).
        gyro:
            Measured body rates (rad/s).
        dt:
            Cycle period (s).

        Returns
        -------
        numpy.ndarray
            Normalised torque command ``[roll, pitch, yaw]`` in ≈[-1, 1].
        """
        roll, pitch, yaw = euler
        self.angle_errors = np.array(
            [
                wrap_pi(targets.roll - roll),
                wrap_pi(targets.pitch - pitch),
                wrap_pi(targets.yaw - yaw),
            ]
        )
        self.rate_targets = np.array(
            [
                constrain(self.angle_p * self.angle_errors[0], -self.rate_max, self.rate_max),
                constrain(self.angle_p * self.angle_errors[1], -self.rate_max, self.rate_max),
                constrain(self.angle_p * self.angle_errors[2], -self.rate_max, self.rate_max),
            ]
        )
        torque = np.array(
            [
                self.pid_roll.update(self.rate_targets[0], float(gyro[0]), dt),
                self.pid_pitch.update(self.rate_targets[1], float(gyro[1]), dt),
                self.pid_yaw.update(self.rate_targets[2], float(gyro[2]), dt),
            ]
        )
        # Torque demands saturate at full differential authority.
        self.last_torque_cmd = np.clip(torque, -1.0, 1.0)
        return self.last_torque_cmd

    def state_variables(self) -> dict[str, float]:
        """Traced intermediates of the angle loops + rate PIDs."""
        out = {
            "ANG_P": self.angle_p,
            "ERR_R": float(self.angle_errors[0]),
            "ERR_P": float(self.angle_errors[1]),
            "ERR_Y": float(self.angle_errors[2]),
            "TGT_RATE_R": float(self.rate_targets[0]),
            "TGT_RATE_P": float(self.rate_targets[1]),
            "TGT_RATE_Y": float(self.rate_targets[2]),
        }
        for name, pid in self.rate_pids.items():
            for var, value in pid.state_variables().items():
                out[f"{name}.{var}"] = value
        return out
