"""Square-root controller (ArduPilot's ``sqrt_controller``).

The second "essential controller software" function in the paper's
Table II. It is a proportional controller whose response flattens to a
square-root curve for large errors so the commanded correction respects a
maximum achievable acceleration:

* small error:  ``output = p * error``
* large error:  ``output = sign(error) * sqrt(2 * accel_max * (|error| - linear/2))``

where ``linear = accel_max / p**2`` is the crossover error.
"""

from __future__ import annotations

import math

from repro.exceptions import ControlError
from repro.utils.math3d import constrain

__all__ = ["SqrtController"]


class SqrtController:
    """Sqrt-limited P controller for position→velocity conversion."""

    STATE_VARIABLES = ("P", "ERR", "OUT", "LIM")

    def __init__(self, name: str, p: float, accel_max: float, output_max: float):
        if p <= 0.0:
            raise ControlError(f"sqrt controller gain must be positive, got {p}")
        if accel_max <= 0.0 or output_max <= 0.0:
            raise ControlError("accel_max and output_max must be positive")
        self.name = name
        self.p = p
        self.accel_max = accel_max
        self.output_max = output_max
        # Traced intermediates.
        self.error = 0.0
        self.output = 0.0

    @property
    def linear_region(self) -> float:
        """Error magnitude below which the response is purely linear."""
        return self.accel_max / (self.p * self.p)

    def reset(self) -> None:
        """Clear the traced intermediates."""
        self.error = 0.0
        self.output = 0.0

    def update(self, target: float, measurement: float) -> float:
        """Return the (velocity) correction for the given position error."""
        error = target - measurement
        self.error = error
        linear = self.linear_region
        if abs(error) <= linear:
            out = self.p * error
        else:
            out = math.copysign(
                math.sqrt(2.0 * self.accel_max * (abs(error) - linear / 2.0)), error
            )
        self.output = constrain(out, -self.output_max, self.output_max)
        return self.output

    def state_variables(self) -> dict[str, float]:
        """Traced intermediates, keyed by short names."""
        return {
            "P": self.p,
            "ERR": self.error,
            "OUT": self.output,
            "LIM": self.output_max,
        }

    def set_state_variable(self, name: str, value: float) -> None:
        """Overwrite one intermediate (attacker write primitive)."""
        value = float(value)
        if name == "P":
            if value <= 0.0:
                # A non-positive gain would make linear_region undefined;
                # the firmware's own code would fault here, so clamp to a
                # tiny positive value (the manipulation still neuters the
                # loop, which is the attacker-relevant effect).
                value = 1e-6
            self.p = value
        elif name == "ERR":
            self.error = value
        elif name == "OUT":
            self.output = value
        elif name == "LIM":
            self.output_max = max(value, 1e-6)
        else:
            raise ControlError(f"{self.name}: unknown state variable '{name}'")
