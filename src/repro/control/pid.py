"""PID controller with attacker-visible intermediate state variables.

This mirrors ArduPilot's ``AC_PID``: proportional/integral/derivative terms
with an integrator clamp, a filtered derivative, an optional feed-forward
and an output *scaler* (the ``EKFNAVVELGAINSCALER``-style multiplier the
paper calls out in Section III-C).

Every intermediate named in the paper's Fig. 3 is a real, individually
addressable attribute:

====== =============================================================
Name   Meaning
====== =============================================================
KP     proportional gain (constant between parameter updates)
KI     integral gain
KD     derivative gain
DT     loop period fed to the last update
INTEG  integrator accumulator — the `PIDR.INTEG` attack target (Fig. 10)
INPUT  current input error (target - measurement) — Fig. 6 attack target
DERIV  filtered error derivative
SCALER output scaler — the Fig. 7 attack target
====== =============================================================

The summed output is clamped to ``output_limit`` (default ±5000), the
"oversized safety range" whose range-validation laxity Fig. 8 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ControlError
from repro.utils.filters import alpha_from_cutoff
from repro.utils.math3d import constrain

__all__ = ["PIDGains", "PIDOutput", "PIDController"]


@dataclass
class PIDGains:
    """Gain set for one PID loop."""

    kp: float = 0.0
    ki: float = 0.0
    kd: float = 0.0
    kff: float = 0.0
    imax: float = 1.0
    filt_hz: float = 20.0

    def __post_init__(self) -> None:
        if self.imax < 0.0:
            raise ControlError(f"imax must be non-negative, got {self.imax}")
        if self.filt_hz < 0.0:
            raise ControlError("filter cutoff must be non-negative")


@dataclass
class PIDOutput:
    """Per-term breakdown of one PID update (the Fig. 8a series)."""

    p: float
    i: float
    d: float
    ff: float
    total: float


class PIDController:
    """ArduPilot-style PID with traceable internals.

    Parameters
    ----------
    name:
        Controller identifier used in logs and the memory map, e.g. "PIDR".
    gains:
        Initial gain set.
    output_limit:
        Symmetric clamp on the summed output. The default matches the
        ±5000 "oversized safety range" noted in the paper.
    """

    #: Names exposed to the tracer / memory map, in declaration order.
    #: Nine per PID, matching the paper's "9 intermediate variables ...
    #: for each of their PID controllers" (Section V-B).
    STATE_VARIABLES = (
        "KP", "KI", "KD", "FF", "DT", "INTEG", "INPUT", "DERIV", "SCALER",
    )

    def __init__(self, name: str, gains: PIDGains, output_limit: float = 5000.0):
        if output_limit <= 0.0:
            raise ControlError("output_limit must be positive")
        self.name = name
        self.gains = gains
        self.output_limit = output_limit
        # Intermediate state variables (paper Fig. 3 naming).
        self.integrator = 0.0  # INTEG
        self.input_error = 0.0  # INPUT
        self.derivative = 0.0  # DERIV
        self.scaler = 1.0  # SCALER
        self.last_dt = 0.0  # DT
        self._last_error: float | None = None
        self.last_output = PIDOutput(0.0, 0.0, 0.0, 0.0, 0.0)

    def reset(self) -> None:
        """Zero the dynamic state (integrator, error history, derivative)."""
        self.integrator = 0.0
        self.input_error = 0.0
        self.derivative = 0.0
        self.last_dt = 0.0
        self._last_error = None
        self.last_output = PIDOutput(0.0, 0.0, 0.0, 0.0, 0.0)

    def update(self, target: float, measurement: float, dt: float) -> float:
        """Run one PID cycle and return the clamped output.

        The update reads the intermediate attributes afresh each cycle, so a
        value injected between cycles (by the attacker's memory view)
        genuinely propagates into the control output — the property the
        paper's data-manipulation attacks rely on.
        """
        if dt <= 0.0:
            raise ControlError(f"dt must be positive, got {dt}")
        g = self.gains
        error = target - measurement
        self.input_error = error
        self.last_dt = dt

        p_term = g.kp * error

        self.integrator = constrain(
            self.integrator + g.ki * error * dt, -g.imax, g.imax
        )
        i_term = self.integrator

        if self._last_error is None:
            raw_derivative = 0.0
        else:
            raw_derivative = (error - self._last_error) / dt
        self._last_error = error
        alpha = alpha_from_cutoff(g.filt_hz, dt)
        self.derivative += alpha * (raw_derivative - self.derivative)
        d_term = g.kd * self.derivative

        ff_term = g.kff * target

        total = (p_term + i_term + d_term + ff_term) * self.scaler
        total = constrain(total, -self.output_limit, self.output_limit)
        self.last_output = PIDOutput(
            p=p_term, i=i_term, d=d_term, ff=ff_term, total=total
        )
        return total

    # ------------------------------------------------------------------ #
    # Variable-level access for profiling and attacks
    # ------------------------------------------------------------------ #
    def state_variables(self) -> dict[str, float]:
        """Snapshot of the traced intermediates, keyed by Fig. 3 names."""
        return {
            "KP": self.gains.kp,
            "KI": self.gains.ki,
            "KD": self.gains.kd,
            "FF": self.gains.kff,
            "DT": self.last_dt,
            "INTEG": self.integrator,
            "INPUT": self.input_error,
            "DERIV": self.derivative,
            "SCALER": self.scaler,
        }

    def set_state_variable(self, name: str, value: float) -> None:
        """Overwrite one intermediate (the attacker's write primitive).

        No range validation is applied here on purpose: within the
        compromised memory region the MPU permits arbitrary writes; range
        checks exist only on the parameter-update path (``ParameterStore``).
        """
        value = float(value)
        if name == "KP":
            self.gains.kp = value
        elif name == "KI":
            self.gains.ki = value
        elif name == "KD":
            self.gains.kd = value
        elif name == "FF":
            self.gains.kff = value
        elif name == "DT":
            self.last_dt = value
        elif name == "INTEG":
            self.integrator = value
        elif name == "INPUT":
            self.input_error = value
        elif name == "DERIV":
            self.derivative = value
        elif name == "SCALER":
            self.scaler = value
        else:
            raise ControlError(f"{self.name}: unknown state variable '{name}'")
