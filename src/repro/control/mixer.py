"""Motor mixer: throttle + torque demands → four motor commands.

Matches ArduPilot's QUAD/X output stage, including the saturation strategy:
when a motor would exceed [0, 1] the mixer sacrifices yaw authority first,
then rescales roll/pitch, preserving total collective thrust as long as
possible (attitude before altitude).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ControlError

__all__ = ["MotorMixer"]


class MotorMixer:
    """X-quad mixer with prioritised saturation handling."""

    #: Per-motor (roll, pitch, yaw) contribution factors for the ArduPilot
    #: QUAD/X order: 1 front-right, 2 back-left, 3 front-left, 4 back-right.
    ROLL_FACTORS = np.array([-0.5, 0.5, 0.5, -0.5])
    PITCH_FACTORS = np.array([0.5, -0.5, 0.5, -0.5])
    YAW_FACTORS = np.array([-0.5, -0.5, 0.5, 0.5])

    def __init__(self, min_throttle: float = 0.0, max_throttle: float = 1.0):
        if not 0.0 <= min_throttle < max_throttle <= 1.0:
            raise ControlError("require 0 <= min_throttle < max_throttle <= 1")
        self.min_throttle = min_throttle
        self.max_throttle = max_throttle
        self.last_outputs = np.zeros(4)
        self.saturated = False

    def mix(self, throttle: float, torque_cmd: np.ndarray) -> np.ndarray:
        """Combine demands into four motor outputs in [min, max].

        Parameters
        ----------
        throttle:
            Collective throttle fraction in [0, 1].
        torque_cmd:
            Normalised (roll, pitch, yaw) torque demands, each in ≈[-1, 1].
        """
        roll_cmd, pitch_cmd, yaw_cmd = (float(torque_cmd[i]) for i in range(3))
        throttle = float(np.clip(throttle, 0.0, 1.0))

        headroom = min(throttle - self.min_throttle, self.max_throttle - throttle)
        attitude_mix = (
            self.ROLL_FACTORS * roll_cmd
            + self.PITCH_FACTORS * pitch_cmd
            + self.YAW_FACTORS * yaw_cmd
        )
        peak = float(np.max(np.abs(attitude_mix)))
        self.saturated = peak > headroom and peak > 0.0

        if self.saturated:
            # Drop yaw first; if still saturated, rescale roll/pitch.
            rp_mix = self.ROLL_FACTORS * roll_cmd + self.PITCH_FACTORS * pitch_cmd
            rp_peak = float(np.max(np.abs(rp_mix)))
            if rp_peak > headroom and rp_peak > 0.0:
                attitude_mix = rp_mix * (headroom / rp_peak)
            else:
                yaw_headroom = headroom - rp_peak
                yaw_mix = self.YAW_FACTORS * yaw_cmd
                yaw_peak = float(np.max(np.abs(yaw_mix)))
                if yaw_peak > yaw_headroom and yaw_peak > 0.0:
                    yaw_mix = yaw_mix * (yaw_headroom / yaw_peak)
                attitude_mix = rp_mix + yaw_mix

        outputs = np.clip(
            throttle + attitude_mix, self.min_throttle, self.max_throttle
        )
        self.last_outputs = outputs
        return outputs
