"""Position control: the translational half of the Fig. 1 cascade.

Each translational DoF (x, y, z in NED) runs the paper's three primitive
sub-controllers: position (square-root P), velocity (PID) and acceleration
(pass-through with limits). Horizontal acceleration demands are converted
to lean angles; the vertical demand becomes a throttle correction around
hover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.control.attitude import AttitudeTargets
from repro.control.pid import PIDController, PIDGains
from repro.control.sqrt_controller import SqrtController
from repro.utils.math3d import constrain

__all__ = ["PositionSetpoint", "AxisCascade", "PositionController"]


@dataclass
class PositionSetpoint:
    """Desired NED position plus heading for one navigation cycle."""

    position: np.ndarray
    yaw: float = 0.0


class AxisCascade:
    """Position→velocity→acceleration cascade for a single axis.

    This is one of the paper's "six cascading controllers", built from
    "three primitive sub-controllers" (Section I / Fig. 1): ``ctrl1``
    (position, sqrt P), ``ctrl2`` (velocity, PID) and ``ctrl3``
    (acceleration, limiter).
    """

    def __init__(
        self,
        axis: str,
        pos_p: float,
        vel_max: float,
        vel_gains: PIDGains,
        accel_max: float,
    ):
        self.axis = axis
        self.pos_ctrl = SqrtController(
            f"PSC_{axis}_POS", p=pos_p, accel_max=accel_max, output_max=vel_max
        )
        self.vel_ctrl = PIDController(f"PSC_{axis}_VEL", vel_gains)
        self.accel_max = accel_max
        # Traced intermediates.
        self.vel_target = 0.0
        self.accel_cmd = 0.0

    def reset(self) -> None:
        """Clear all cascade state."""
        self.pos_ctrl.reset()
        self.vel_ctrl.reset()
        self.vel_target = 0.0
        self.accel_cmd = 0.0

    def update(self, pos_target: float, pos: float, vel: float, dt: float) -> float:
        """Run the three primitives; returns the limited acceleration demand."""
        self.vel_target = self.pos_ctrl.update(pos_target, pos)
        raw_accel = self.vel_ctrl.update(self.vel_target, vel, dt)
        self.accel_cmd = constrain(raw_accel, -self.accel_max, self.accel_max)
        return self.accel_cmd

    def state_variables(self) -> dict[str, float]:
        """Traced intermediates across the three primitives."""
        out = {f"{self.axis}_VELTGT": self.vel_target, f"{self.axis}_ACC": self.accel_cmd}
        for var, value in self.pos_ctrl.state_variables().items():
            out[f"{self.axis}_POS.{var}"] = value
        for var, value in self.vel_ctrl.state_variables().items():
            out[f"{self.axis}_VEL.{var}"] = value
        return out


class PositionController:
    """Full 3-axis position controller producing attitude targets."""

    def __init__(
        self,
        hover_throttle: float,
        gravity: float = 9.80665,
        lean_angle_max: float = np.deg2rad(25.0),
        pos_xy_p: float = 1.0,
        vel_xy_max: float = 5.0,
        accel_xy_max: float = 4.0,
        pos_z_p: float = 1.0,
        vel_z_max: float = 2.5,
        accel_z_max: float = 2.5,
    ):
        self.gravity = gravity
        self.hover_throttle = hover_throttle
        self.lean_angle_max = lean_angle_max
        vel_xy_gains = PIDGains(kp=1.2, ki=0.5, kd=0.02, imax=2.0, filt_hz=5.0)
        vel_z_gains = PIDGains(kp=2.5, ki=1.2, kd=0.0, imax=2.0, filt_hz=5.0)
        self.axis_x = AxisCascade("X", pos_xy_p, vel_xy_max, vel_xy_gains, accel_xy_max)
        self.axis_y = AxisCascade(
            "Y",
            pos_xy_p,
            vel_xy_max,
            PIDGains(
                kp=vel_xy_gains.kp,
                ki=vel_xy_gains.ki,
                kd=vel_xy_gains.kd,
                imax=vel_xy_gains.imax,
                filt_hz=vel_xy_gains.filt_hz,
            ),
            accel_xy_max,
        )
        self.axis_z = AxisCascade("Z", pos_z_p, vel_z_max, vel_z_gains, accel_z_max)
        self.last_targets = AttitudeTargets()

    @property
    def cascades(self) -> dict[str, AxisCascade]:
        """The three translational cascades keyed by axis."""
        return {"X": self.axis_x, "Y": self.axis_y, "Z": self.axis_z}

    def reset(self) -> None:
        """Clear all cascade state."""
        for cascade in self.cascades.values():
            cascade.reset()
        self.last_targets = AttitudeTargets()

    def update(
        self,
        setpoint: PositionSetpoint,
        position: np.ndarray,
        velocity: np.ndarray,
        yaw: float,
        dt: float,
    ) -> AttitudeTargets:
        """One navigation cycle: NED setpoint → attitude + throttle targets."""
        accel_n = self.axis_x.update(
            float(setpoint.position[0]), float(position[0]), float(velocity[0]), dt
        )
        accel_e = self.axis_y.update(
            float(setpoint.position[1]), float(position[1]), float(velocity[1]), dt
        )
        accel_d = self.axis_z.update(
            float(setpoint.position[2]), float(position[2]), float(velocity[2]), dt
        )

        # Rotate horizontal acceleration demand into the heading frame.
        cos_yaw, sin_yaw = math.cos(yaw), math.sin(yaw)
        accel_fwd = accel_n * cos_yaw + accel_e * sin_yaw
        accel_rgt = -accel_n * sin_yaw + accel_e * cos_yaw

        # Small-angle lean conversion: forward accel -> pitch down (negative),
        # rightward accel -> roll right (positive).
        pitch_target = constrain(
            -math.atan2(accel_fwd, self.gravity), -self.lean_angle_max, self.lean_angle_max
        )
        roll_target = constrain(
            math.atan2(accel_rgt, self.gravity), -self.lean_angle_max, self.lean_angle_max
        )

        # Vertical: accel_d demand (positive down) maps to throttle around
        # hover; dividing by tilt keeps the vertical thrust component.
        tilt = math.cos(roll_target) * math.cos(pitch_target)
        tilt = max(tilt, 0.5)
        climb_accel = -accel_d  # positive up
        throttle = self.hover_throttle * (1.0 + climb_accel / self.gravity) / tilt
        throttle = constrain(throttle, 0.0, 1.0)

        self.last_targets = AttitudeTargets(
            roll=roll_target, pitch=pitch_target, yaw=setpoint.yaw, throttle=throttle
        )
        return self.last_targets

    def state_variables(self) -> dict[str, float]:
        """Traced intermediates across all three cascades."""
        out: dict[str, float] = {
            "TGT_ROLL": self.last_targets.roll,
            "TGT_PITCH": self.last_targets.pitch,
            "TGT_THR": self.last_targets.throttle,
        }
        for cascade in self.cascades.values():
            out.update(cascade.state_variables())
        return out
