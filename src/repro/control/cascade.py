"""Controller registry: names every controller function and its variables.

The profiling stage ("controller function identification", Section IV-A)
walks this registry instead of disassembling firmware: each entry maps a
controller function to the objects holding its intermediate state
variables, which the memory layout then places into MPU regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.control.attitude import AttitudeController
from repro.control.position import PositionController
from repro.estimation.sins import StrapdownINS

__all__ = ["ControllerFunction", "ControllerRegistry"]


@dataclass
class ControllerFunction:
    """One identified controller function and its traceable variables."""

    name: str
    kind: str  # "PID", "Sqrt" or "SINS" — the Table II categories
    read_variables: object = field(repr=False, default=None)

    def variables(self) -> dict[str, float]:
        """Snapshot the function's intermediate state variables."""
        return dict(self.read_variables())


class ControllerRegistry:
    """All controller functions of one vehicle, grouped by kind."""

    def __init__(
        self,
        attitude: AttitudeController,
        position: PositionController,
        sins: StrapdownINS,
    ):
        self.attitude = attitude
        self.position = position
        self.sins = sins
        self._functions: list[ControllerFunction] = []
        self._build()

    def _build(self) -> None:
        for name, pid in self.attitude.rate_pids.items():
            self._functions.append(
                ControllerFunction(name=name, kind="PID", read_variables=pid.state_variables)
            )
        for axis, cascade in self.position.cascades.items():
            self._functions.append(
                ControllerFunction(
                    name=f"PSC_{axis}_VEL",
                    kind="PID",
                    read_variables=cascade.vel_ctrl.state_variables,
                )
            )
            self._functions.append(
                ControllerFunction(
                    name=f"PSC_{axis}_POS",
                    kind="Sqrt",
                    read_variables=cascade.pos_ctrl.state_variables,
                )
            )
        self._functions.append(
            ControllerFunction(
                name="SINS",
                kind="SINS",
                read_variables=lambda: dict(self.sins.intermediates),
            )
        )

    def functions(self, kind: str | None = None) -> list[ControllerFunction]:
        """All controller functions, optionally filtered by Table II kind."""
        if kind is None:
            return list(self._functions)
        return [f for f in self._functions if f.kind == kind]

    def function(self, name: str) -> ControllerFunction:
        """Look up one controller function by name."""
        for f in self._functions:
            if f.name == name:
                return f
        raise KeyError(f"unknown controller function '{name}'")

    def all_variables(self) -> dict[str, float]:
        """Flat snapshot ``{function.variable: value}`` across the registry."""
        out: dict[str, float] = {}
        for f in self._functions:
            for var, value in f.variables().items():
                key = var if "." in var else f"{f.name}.{var}"
                out[key] = value
        return out
