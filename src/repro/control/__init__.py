"""Cascaded flight controllers (PID, sqrt, attitude, position, mixer)."""

from repro.control.attitude import AttitudeController, AttitudeTargets
from repro.control.cascade import ControllerFunction, ControllerRegistry
from repro.control.mixer import MotorMixer
from repro.control.pid import PIDController, PIDGains, PIDOutput
from repro.control.position import AxisCascade, PositionController, PositionSetpoint
from repro.control.sqrt_controller import SqrtController

__all__ = [
    "AttitudeController",
    "AttitudeTargets",
    "AxisCascade",
    "ControllerFunction",
    "ControllerRegistry",
    "MotorMixer",
    "PIDController",
    "PIDGains",
    "PIDOutput",
    "PositionController",
    "PositionSetpoint",
    "SqrtController",
]
