"""Target state variable list generation — the paper's Algorithm 1.

Pipeline: pairwise Pearson correlation → assumption pruning → hierarchical
clustering on the correlation matrix → per-cluster stepwise-AIC regression
against the cluster's vehicle-dynamics variables → keep predictors with
p < 0.05. The surviving variables form the TSVL, the candidate attack
surface handed to the RL exploit generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.clustering import ClusteringResult, cluster_by_correlation
from repro.analysis.correlation import CorrelationResult, correlation_matrix
from repro.analysis.pruning import PruningConfig, PruningReport, prune_state_variables
from repro.analysis.stepwise import StepwiseResult, stepwise_aic
from repro.exceptions import AnalysisError
from repro.obs.log import get_logger
from repro.obs.tracing import span as obs_span
from repro.utils.timeseries import TraceTable

__all__ = ["TsvlConfig", "TsvlResult", "generate_tsvl"]

_log = get_logger(__name__)


@dataclass
class TsvlConfig:
    """Tunables of the identification pipeline."""

    significance_alpha: float = 0.05
    cluster_distance_threshold: float = 0.6
    pruning: PruningConfig = field(default_factory=PruningConfig)
    #: Keep at most this many TSVL entries per response, strongest first
    #: (None = unbounded). The paper reports compact TSVLs (Table II).
    max_per_response: int | None = None
    #: Candidates whose |r| with the response exceeds this are treated as
    #: aliases of the response (e.g. two log channels of the same physical
    #: roll estimate) and excluded — the alias-tracking concern the paper
    #: inherits from points-to analysis (Section VI, Limitations).
    alias_threshold: float = 0.995
    #: Besides the response's own cluster, variables whose |r| with the
    #: response is at least this floor join the explanatory candidate set —
    #: matching the paper's Fig. 3 search over "(P, DesP, INPUT, DesR, tv,
    #: INTEG, IR)", which spans correlation partners beyond one cluster.
    min_correlation: float = 0.1


@dataclass
class TsvlResult:
    """Everything Algorithm 1 produced, for reporting and benchmarks."""

    tsvl: list[str]
    correlation: CorrelationResult
    pruning: PruningReport
    clustering: ClusteringResult
    models: dict[str, StepwiseResult]
    esvl_size: int
    responses_used: list[str]
    #: Degradation notes: why the pipeline produced less than usual (empty
    #: on a healthy run). Together with ``pruning.dropped`` this accounts
    #: for every variable that fell out of the analysis.
    notes: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether the pipeline hit a degraded-data path."""
        return bool(self.notes)

    @property
    def selection_ratio(self) -> float:
        """|TSVL| / |ESVL| — the last column of Table II."""
        if self.esvl_size == 0:
            return 0.0
        return len(self.tsvl) / self.esvl_size


def generate_tsvl(
    table: TraceTable,
    dynamics_variables: list[str],
    config: TsvlConfig | None = None,
) -> TsvlResult:
    """Run Algorithm 1 over an aligned ESVL dataset.

    Parameters
    ----------
    table:
        Profiling dataset; columns are the ESVL.
    dynamics_variables:
        The essential vehicle-dynamics columns to explain (the paper's
        response variables, e.g. ``ATT.R`` for the roll angle).
    config:
        Pipeline thresholds.
    """
    config = config or TsvlConfig()
    if not dynamics_variables:
        raise AnalysisError("need at least one dynamics (response) variable")
    missing = [v for v in dynamics_variables if v not in table]
    if missing:
        raise AnalysisError(f"dynamics variables not in ESVL: {missing}")
    if len(table) < 2:
        # Degenerate dataset (a crashed profiling mission can log almost
        # nothing): even pairwise correlation is undefined. Degrade with
        # every variable accounted for instead of raising.
        note = f"dataset has {len(table)} rows; Algorithm 1 needs at least 2"
        _log.warning("Algorithm 1 degraded: %s", note)
        return TsvlResult(
            tsvl=[],
            correlation=CorrelationResult(
                names=list(table.columns),
                matrix=np.full((len(table.columns),) * 2, np.nan),
            ),
            pruning=PruningReport(dropped={
                name: f"too few samples (n={len(table)} < 2)"
                for name in table.columns
            }),
            clustering=ClusteringResult(
                clusters=[], labels={},
                linkage=np.empty((0, 4)), names=[],
            ),
            models={},
            esvl_size=len(table.columns),
            responses_used=[],
            notes=[note],
        )

    with obs_span(
        "analysis.correlation", columns=len(table.columns), rows=len(table)
    ):  # line 14-15
        corr = correlation_matrix(table)
    with obs_span(
        "analysis.pruning", columns_in=len(table.columns)
    ) as prune_span:  # line 16
        pruning = prune_state_variables(table, config.pruning)
        prune_span.set("kept", len(pruning.kept))
        prune_span.set("dropped", len(pruning.dropped))
    notes: list[str] = []
    # Correlation can be undefined (NaN) for a pruning survivor in corner
    # cases the moment checks don't cover (e.g. pathological scaling);
    # clustering refuses NaN distances, so such variables are pruned here
    # with a recorded reason instead.
    defined = []
    for name in pruning.kept:
        row_ok = all(
            not math.isnan(corr.value(name, other))
            for other in pruning.kept
            if other != name
        )
        if row_ok:
            defined.append(name)
        else:
            pruning.dropped[name] = "undefined correlation"
            notes.append(f"dropped '{name}': undefined correlation")
    pruning.kept = defined
    if len(pruning.kept) < 2:
        # Degrade, don't raise: an empty TSVL with the reasons recorded is
        # the honest answer to a dataset this broken (Algorithm 1 has
        # nothing left to cluster or regress).
        notes.append(
            "fewer than two variables survive pruning; TSVL is empty "
            f"(dropped: {len(pruning.dropped)})"
        )
        _log.warning("Algorithm 1 degraded: %s", notes[-1])
        return TsvlResult(
            tsvl=[],
            correlation=corr,
            pruning=pruning,
            clustering=cluster_by_correlation(
                corr, names=pruning.kept,
                distance_threshold=config.cluster_distance_threshold,
            ),
            models={},
            esvl_size=len(table.columns),
            responses_used=[],
            notes=notes,
        )
    with obs_span(
        "analysis.clustering", columns_in=len(pruning.kept)
    ) as cluster_span:  # line 17
        clustering = cluster_by_correlation(
            corr, names=pruning.kept,
            distance_threshold=config.cluster_distance_threshold,
        )
        cluster_span.set("clusters", len(clustering.clusters))

    tsvl: list[str] = []
    models: dict[str, StepwiseResult] = {}
    responses_used: list[str] = []
    with obs_span(
        "analysis.stepwise", clusters=len(clustering.clusters)
    ) as stepwise_span:
        for subset in clustering.clusters:  # line 18
            responses = [v for v in dynamics_variables if v in subset]
            for response in responses:
                partners = [
                    v for v in pruning.kept
                    if v not in subset
                    and abs(corr.value(response, v)) >= config.min_correlation
                ]
                candidates = [
                    v for v in list(subset) + partners
                    if v != response
                    and v not in dynamics_variables
                    and abs(corr.value(response, v)) < config.alias_threshold
                ]
                if not candidates:
                    continue
                result = stepwise_aic(table, response, candidates)  # line 19
                models[response] = result
                responses_used.append(response)
                if result.model is None:
                    continue
                significant = result.model.significant_predictors(  # line 20
                    config.significance_alpha
                )
                if config.max_per_response is not None:
                    # Rank by significance (smallest p first).
                    p_by_name = dict(
                        zip(result.model.predictors, result.model.p_values)
                    )
                    significant = sorted(significant, key=lambda n: p_by_name[n])
                    significant = significant[: config.max_per_response]
                for name in significant:  # line 21
                    if name not in tsvl:
                        tsvl.append(name)
        stepwise_span.set("models", len(models))
        stepwise_span.set("tsvl", len(tsvl))

    _log.info(
        "Algorithm 1: %d ESVL columns -> %d kept -> %d clusters -> "
        "%d models -> %d TSVL entries",
        len(table.columns), len(pruning.kept), len(clustering.clusters),
        len(models), len(tsvl),
    )
    return TsvlResult(
        tsvl=tsvl,
        correlation=corr,
        pruning=pruning,
        clustering=clustering,
        models=models,
        esvl_size=len(table.columns),
        responses_used=responses_used,
        notes=notes,
    )
