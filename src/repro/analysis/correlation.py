"""Pairwise Pearson correlation over the ESVL time series (Eq. 1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AnalysisError
from repro.utils.timeseries import TraceTable

__all__ = ["CorrelationResult", "pearson", "correlation_matrix"]


@dataclass
class CorrelationResult:
    """Correlation matrix plus the column names it is indexed by."""

    names: list[str]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        # Name -> row index built once: value()/strongest_partners() are
        # called per candidate pair inside Algorithm 1, and repeated
        # list.index() scans made those lookups O(n) each on wide ESVLs.
        self._index = {name: i for i, name in enumerate(self.names)}

    def _loc(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise AnalysisError(f"unknown variable '{name}'") from None

    def value(self, a: str, b: str) -> float:
        """Correlation coefficient between two named variables."""
        return float(self.matrix[self._loc(a), self._loc(b)])

    def strongest_partners(self, name: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` variables most correlated (by |r|) with ``name``."""
        i = self._loc(name)
        scored = [
            (other, float(self.matrix[i, j]))
            for j, other in enumerate(self.names)
            if j != i and np.isfinite(self.matrix[i, j])
        ]
        scored.sort(key=lambda item: abs(item[1]), reverse=True)
        return scored[:k]

    def significant_pairs(self, threshold: float = 0.5) -> list[tuple[str, str, float]]:
        """All unordered pairs with |r| above ``threshold`` (Fig. 3 edges)."""
        pairs = []
        n = len(self.names)
        for i in range(n):
            for j in range(i + 1, n):
                r = float(self.matrix[i, j])
                if np.isfinite(r) and abs(r) >= threshold:
                    pairs.append((self.names[i], self.names[j], r))
        pairs.sort(key=lambda item: abs(item[2]), reverse=True)
        return pairs


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length series (Eq. 1).

    Returns ``nan`` when either series is constant or contains non-finite
    values (the coefficient is undefined); Algorithm 1 prunes such
    variables before use.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise AnalysisError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise AnalysisError("need at least two samples")
    if not (np.isfinite(x).all() and np.isfinite(y).all()):
        return float("nan")
    # A constant series has undefined correlation. Checked on the raw
    # values (ptp == 0), not the centred norm: subtracting the mean of a
    # non-representable constant (e.g. 1.7856…) leaves ~1 ulp of rounding
    # residue, which a tiny-norm threshold mistakes for real variance.
    if np.ptp(x) == 0.0 or np.ptp(y) == 0.0:
        return float("nan")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt(np.sum(xc * xc) * np.sum(yc * yc))
    if denom < 1e-300:
        return float("nan")
    return float(np.sum(xc * yc) / denom)


def correlation_matrix(table: TraceTable) -> CorrelationResult:
    """Pairwise Pearson coefficients for every column of ``table``."""
    matrix = table.to_matrix()
    if matrix.shape[0] < 2:
        raise AnalysisError("need at least two rows to correlate")
    centered = matrix - matrix.mean(axis=0)
    norms = np.sqrt(np.sum(centered * centered, axis=0))
    # Constant columns have undefined correlation; detected on the raw
    # values (ptp == 0) because mean-centering a non-representable
    # constant leaves rounding residue that inflates the centred norm.
    # Columns with non-finite samples are equally undefined — and the
    # NaN comparisons below would otherwise mask them as ordinary.
    finite = np.isfinite(matrix).all(axis=0)
    with np.errstate(invalid="ignore"):
        constant = ~finite | (np.ptp(matrix, axis=0) == 0.0) | (norms <= 1e-300)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalised = np.where(~constant, centered / norms, np.nan)
        corr = normalised.T @ normalised
    corr = np.clip(corr, -1.0, 1.0)
    np.fill_diagonal(corr, 1.0)
    corr[constant, :] = np.nan
    corr[:, constant] = np.nan
    return CorrelationResult(names=list(table.columns), matrix=corr)
