"""Ordinary least squares with AIC and coefficient p-values.

The model-comparison machinery behind Algorithm 1's STEPWISEAIC (line 19)
and CHECKSIGNIFICANCELEVEL (lines 6–11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import AnalysisError

__all__ = ["OLSResult", "fit_ols"]


@dataclass
class OLSResult:
    """A fitted linear model ``y = b0 + X @ b``."""

    response: str
    predictors: list[str]
    coefficients: np.ndarray  # [intercept, b1, ..., bk]
    std_errors: np.ndarray
    p_values: np.ndarray  # per predictor (excluding intercept)
    rss: float
    aic: float
    r_squared: float
    n_samples: int

    def significant_predictors(self, alpha: float = 0.05) -> list[str]:
        """Predictors whose coefficient p-value is below ``alpha``."""
        return [
            name for name, p in zip(self.predictors, self.p_values) if p < alpha
        ]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model on an (n, k) predictor matrix."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self.coefficients[0] + X @ self.coefficients[1:]


def fit_ols(
    y: np.ndarray,
    X: np.ndarray,
    response: str = "y",
    predictors: list[str] | None = None,
) -> OLSResult:
    """Fit OLS with intercept; returns coefficients, p-values and AIC.

    AIC follows the Gaussian-likelihood convention
    ``n * ln(RSS / n) + 2k`` with ``k = #predictors + 2`` (intercept and
    variance), the form R's ``step()`` uses up to an additive constant.
    """
    y = np.asarray(y, dtype=float)
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    n, k = X.shape
    if y.shape[0] != n:
        raise AnalysisError(f"response length {y.shape[0]} != {n} rows")
    if predictors is None:
        predictors = [f"x{i}" for i in range(k)]
    if len(predictors) != k:
        raise AnalysisError("predictor-name count mismatch")
    if n <= k + 1:
        raise AnalysisError(f"need more than {k + 1} samples, got {n}")
    if not (np.isfinite(y).all() and np.isfinite(X).all()):
        # Surface degraded data as the pipeline's own error type, not a
        # LinAlgError from deep inside lstsq — stepwise treats it as an
        # unfittable (non-improving) move.
        raise AnalysisError(
            f"non-finite values in regression inputs for '{response}'"
        )

    design = np.column_stack([np.ones(n), X])
    coef, _, rank, _ = np.linalg.lstsq(design, y, rcond=None)
    residuals = y - design @ coef
    rss = float(residuals @ residuals)
    tss = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - rss / tss if tss > 0.0 else 1.0

    dof = n - (k + 1)
    sigma2 = rss / dof if dof > 0 else float("inf")
    # Covariance of the estimator; pseudo-inverse guards collinear designs.
    xtx_inv = np.linalg.pinv(design.T @ design)
    std_errors = np.sqrt(np.clip(np.diag(xtx_inv) * sigma2, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_stats = np.where(std_errors > 0, coef / std_errors, np.inf)
    p_all = 2.0 * stats.t.sf(np.abs(t_stats), df=max(dof, 1))
    # Rank-deficient columns get p = 1 (no evidence).
    if rank < k + 1:
        p_all = np.where(std_errors > 0, p_all, 1.0)

    n_params = k + 2
    if rss <= 0.0:
        aic = -math.inf
    else:
        aic = n * math.log(rss / n) + 2.0 * n_params
    return OLSResult(
        response=response,
        predictors=list(predictors),
        coefficients=coef,
        std_errors=std_errors,
        p_values=p_all[1:],
        rss=rss,
        aic=aic,
        r_squared=r_squared,
        n_samples=n,
    )
