"""Offline log forensics: locate the manipulation onset after the fact.

A MAYDAY-style post-mortem (the paper cites MAYDAY [9] as the accident-
investigation counterpart to ARES): given the dataflash log of a flight
that ended badly, estimate *when* the behaviour left its benign envelope
and *which* logged signals moved first — the starting point an
investigator needs before attributing a crash to a state-variable attack.

Method: for each analysed signal, a benign envelope (rolling-window
z-score against the signal's own early-flight statistics) flags anomalous
samples; the report orders signals by first-anomaly time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AnalysisError
from repro.firmware.logger import DataflashLogger

__all__ = ["SignalFinding", "ForensicReport", "analyse_flight_log"]


@dataclass
class SignalFinding:
    """First-anomaly information for one logged signal."""

    signal: str
    onset_time: float
    peak_zscore: float
    baseline_mean: float
    baseline_std: float


@dataclass
class ForensicReport:
    """Ordered anomaly findings for one flight log."""

    findings: list[SignalFinding] = field(default_factory=list)
    baseline_window: tuple[float, float] = (0.0, 0.0)

    @property
    def earliest_onset(self) -> float | None:
        """Time of the first anomaly across all signals."""
        if not self.findings:
            return None
        return min(f.onset_time for f in self.findings)

    def render(self) -> str:
        """Investigator-facing summary."""
        lines = [
            "Flight-log forensics",
            f"  baseline window: {self.baseline_window[0]:.1f}-"
            f"{self.baseline_window[1]:.1f} s",
        ]
        if not self.findings:
            lines.append("  no anomalies found")
            return "\n".join(lines)
        lines.append("  signal            onset    peak z")
        for finding in sorted(self.findings, key=lambda f: f.onset_time):
            lines.append(
                f"  {finding.signal:16s} {finding.onset_time:6.1f}s "
                f"{finding.peak_zscore:8.1f}"
            )
        return "\n".join(lines)


#: Default signals an investigator inspects first (attitude + PID terms).
DEFAULT_SIGNALS = (
    "ATT.R", "ATT.DesR", "ATT.IRErr", "PIDR.I", "PIDR.P", "RATE.ROut",
)


def analyse_flight_log(
    logger: DataflashLogger,
    signals=DEFAULT_SIGNALS,
    baseline_fraction: float = 0.3,
    z_threshold: float = 6.0,
    min_baseline_samples: int = 30,
) -> ForensicReport:
    """Scan a flight log for the first out-of-envelope samples.

    Parameters
    ----------
    logger:
        The flight's dataflash log.
    signals:
        ``MSG.Field`` names to analyse.
    baseline_fraction:
        Leading fraction of the flight treated as the benign baseline.
    z_threshold:
        Z-score beyond which a sample counts as anomalous.
    """
    if not 0.0 < baseline_fraction < 1.0:
        raise AnalysisError("baseline_fraction must be in (0, 1)")
    report = ForensicReport()
    for column in signals:
        msg, _, fieldname = column.partition(".")
        if not fieldname:
            raise AnalysisError(f"signal '{column}' must look like MSG.Field")
        records = logger.records(msg)
        if len(records) < min_baseline_samples * 2:
            continue
        times = np.array([t for t, _ in records])
        values = np.array([rec[fieldname] for _, rec in records])
        split = max(int(len(values) * baseline_fraction), min_baseline_samples)
        baseline = values[:split]
        mean = float(baseline.mean())
        std = float(max(baseline.std(), 1e-9))
        z = np.abs(values - mean) / std
        anomalous = np.flatnonzero(z[split:] > z_threshold)
        report.baseline_window = (float(times[0]), float(times[split - 1]))
        if anomalous.size:
            first = split + int(anomalous[0])
            report.findings.append(
                SignalFinding(
                    signal=column,
                    onset_time=float(times[first]),
                    peak_zscore=float(z[split:].max()),
                    baseline_mean=mean,
                    baseline_std=std,
                )
            )
    return report
