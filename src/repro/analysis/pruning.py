"""ESVL pruning: the statistical-assumption checks of Algorithm 1 (l.1–5).

A state variable survives pruning when it is

* non-constant (constants like the KP/KI/KD gains carry no correlation
  information — the paper drops v1(KP), v2(KI), v3(KD) this way),
* continuous enough (not a few-valued discrete flag), and
* plausibly usable in a linear model: bounded skewness/kurtosis
  ("NormDist") and not a frozen, perfectly self-predicting series ("iid").

Real flight telemetry never passes textbook normality tests at n≈3000, so
the thresholds are deliberately loose and configurable; the paper applies
the same pragmatism (its Fig. 5 retains heavy-tailed variables like tv).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.timeseries import TraceTable

__all__ = ["PruningConfig", "PruningReport", "prune_state_variables"]


@dataclass
class PruningConfig:
    """Thresholds for the assumption checks."""

    constant_std: float = 1e-9
    min_unique_values: int = 8
    max_abs_skewness: float = 15.0
    max_excess_kurtosis: float = 150.0
    max_lag1_autocorr: float = 0.9999
    #: Columns shorter than this cannot support any statistic downstream
    #: (correlation needs 2, OLS more); dropped with reason.
    min_samples: int = 3


@dataclass
class PruningReport:
    """Outcome of pruning one ESVL."""

    kept: list[str] = field(default_factory=list)
    dropped: dict[str, str] = field(default_factory=dict)  # name -> reason

    @property
    def num_kept(self) -> int:
        """Number of variables surviving the checks."""
        return len(self.kept)


def _skewness(x: np.ndarray) -> float:
    std = x.std()
    if std < 1e-12:
        return 0.0
    return float(np.mean(((x - x.mean()) / std) ** 3))


def _excess_kurtosis(x: np.ndarray) -> float:
    std = x.std()
    if std < 1e-12:
        return 0.0
    return float(np.mean(((x - x.mean()) / std) ** 4) - 3.0)


def _lag1_autocorr(x: np.ndarray) -> float:
    if x.size < 3:
        return 0.0
    a, b = x[:-1], x[1:]
    sa, sb = a.std(), b.std()
    if sa < 1e-12 or sb < 1e-12:
        return 1.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (sa * sb))


def prune_state_variables(
    table: TraceTable, config: PruningConfig | None = None
) -> PruningReport:
    """Apply Algorithm 1's PRUNESTATEVARLIST to every column of ``table``."""
    config = config or PruningConfig()
    report = PruningReport()
    for name in table.columns:
        x = table.column(name)
        # Degraded-data guards first: NaN propagates silently through the
        # moment checks below (every comparison on NaN is False), so a
        # NaN-bearing column would otherwise *pass* pruning and crash
        # clustering. Prune-with-reason instead.
        if x.size < config.min_samples:
            report.dropped[name] = (
                f"too few samples (n={x.size} < {config.min_samples})"
            )
            continue
        if not np.isfinite(x).all():
            bad = int(np.count_nonzero(~np.isfinite(x)))
            report.dropped[name] = f"missing samples ({bad} non-finite values)"
            continue
        if x.std() <= config.constant_std:
            report.dropped[name] = "constant"
            continue
        if np.unique(np.round(x, 12)).size < config.min_unique_values:
            report.dropped[name] = "discrete"
            continue
        if abs(_skewness(x)) > config.max_abs_skewness:
            report.dropped[name] = "not normally distributed (skewness)"
            continue
        if _excess_kurtosis(x) > config.max_excess_kurtosis:
            report.dropped[name] = "not normally distributed (kurtosis)"
            continue
        if abs(_lag1_autocorr(x)) > config.max_lag1_autocorr:
            report.dropped[name] = "not iid (frozen series)"
            continue
        report.kept.append(name)
    return report
