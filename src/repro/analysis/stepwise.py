"""Stepwise AIC feature selection (Algorithm 1, STEPWISEAIC).

Bidirectional stepwise search: starting from the empty model, repeatedly
apply the single add-or-drop move that lowers AIC the most, until no move
improves it — the procedure of R's ``step()`` with ``direction="both"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.regression import OLSResult, fit_ols
from repro.exceptions import AnalysisError
from repro.utils.timeseries import TraceTable

__all__ = ["StepwiseResult", "stepwise_aic"]


@dataclass
class StepwiseResult:
    """Outcome of one stepwise search."""

    response: str
    model: OLSResult | None
    selected: list[str]
    history: list[tuple[str, str, float]]  # (op, variable, aic)


def _fit(table: TraceTable, response: str, predictors: list[str]) -> OLSResult:
    y = table.column(response)
    if predictors:
        X = np.column_stack([table.column(p) for p in predictors])
    else:
        X = np.zeros((len(table), 0))
    if not predictors:
        # Intercept-only model: AIC with k = 0 predictors.
        n = y.shape[0]
        rss = float(np.sum((y - y.mean()) ** 2))
        aic = n * np.log(max(rss, 1e-300) / n) + 2.0 * 2
        return OLSResult(
            response=response, predictors=[],
            coefficients=np.array([y.mean()]),
            std_errors=np.array([0.0]), p_values=np.zeros(0),
            rss=rss, aic=float(aic), r_squared=0.0, n_samples=n,
        )
    return fit_ols(y, X, response=response, predictors=predictors)


def stepwise_aic(
    table: TraceTable,
    response: str,
    candidates: list[str],
    max_steps: int = 200,
) -> StepwiseResult:
    """Select the AIC-optimal predictor subset for ``response``.

    Parameters
    ----------
    table:
        Aligned ESVL dataset.
    response:
        Column to model (a vehicle dynamics variable, e.g. the roll angle).
    candidates:
        Explanatory columns considered for inclusion.
    """
    if response not in table:
        raise AnalysisError(f"response '{response}' not in table")
    candidates = [c for c in candidates if c != response]
    missing = [c for c in candidates if c not in table]
    if missing:
        raise AnalysisError(f"candidates not in table: {missing}")

    current: list[str] = []
    current_model = _fit(table, response, current)
    best_aic = current_model.aic
    history: list[tuple[str, str, float]] = [("start", "", best_aic)]

    for _ in range(max_steps):
        best_move: tuple[str, str] | None = None
        best_move_aic = best_aic
        best_move_model = None
        for candidate in candidates:
            if candidate in current:
                continue
            try:
                model = _fit(table, response, current + [candidate])
            except AnalysisError:
                # Unfittable move (e.g. too few rows for one more column
                # on a degraded dataset): treat as non-improving, not fatal.
                continue
            if model.aic < best_move_aic - 1e-9:
                best_move = ("add", candidate)
                best_move_aic = model.aic
                best_move_model = model
        for included in current:
            reduced = [c for c in current if c != included]
            try:
                model = _fit(table, response, reduced)
            except AnalysisError:
                continue
            if model.aic < best_move_aic - 1e-9:
                best_move = ("drop", included)
                best_move_aic = model.aic
                best_move_model = model
        if best_move is None:
            break
        op, variable = best_move
        if op == "add":
            current = current + [variable]
        else:
            current = [c for c in current if c != variable]
        current_model = best_move_model
        best_aic = best_move_aic
        history.append((op, variable, best_aic))

    return StepwiseResult(
        response=response,
        model=current_model if current else None,
        selected=list(current),
        history=history,
    )
