"""Multivariate statistical identification of vulnerable state variables."""

from repro.analysis.clustering import (
    ClusteringResult,
    cluster_by_correlation,
    dendrogram_order,
)
from repro.analysis.correlation import (
    CorrelationResult,
    correlation_matrix,
    pearson,
)
from repro.analysis.forensics import (
    ForensicReport,
    SignalFinding,
    analyse_flight_log,
)
from repro.analysis.pruning import (
    PruningConfig,
    PruningReport,
    prune_state_variables,
)
from repro.analysis.regression import OLSResult, fit_ols
from repro.analysis.stepwise import StepwiseResult, stepwise_aic
from repro.analysis.tsvl import TsvlConfig, TsvlResult, generate_tsvl

__all__ = [
    "ClusteringResult",
    "CorrelationResult",
    "ForensicReport",
    "SignalFinding",
    "analyse_flight_log",
    "OLSResult",
    "PruningConfig",
    "PruningReport",
    "StepwiseResult",
    "TsvlConfig",
    "TsvlResult",
    "cluster_by_correlation",
    "correlation_matrix",
    "dendrogram_order",
    "fit_ols",
    "generate_tsvl",
    "pearson",
    "prune_state_variables",
    "stepwise_aic",
]
