"""Hierarchical clustering of state variables by correlation distance.

Algorithm 1 line 17 (HIE-CLUSTER): agglomerative clustering over the
distance ``d(i, j) = 1 - |r_ij|`` so strongly (anti-)correlated variables
land in the same subset. Chosen over K-means because "it does not require
a pre-specified number of clusters" (Section IV-B) — the tree is cut at a
distance threshold instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform

from repro.analysis.correlation import CorrelationResult
from repro.exceptions import AnalysisError

__all__ = ["ClusteringResult", "cluster_by_correlation", "dendrogram_order"]


@dataclass
class ClusteringResult:
    """Variable subsets produced by cutting the dendrogram."""

    clusters: list[list[str]]
    labels: dict[str, int]
    linkage: np.ndarray
    names: list[str]

    @property
    def num_clusters(self) -> int:
        """Number of subsets."""
        return len(self.clusters)

    def cluster_of(self, name: str) -> list[str]:
        """The subset containing ``name``."""
        return self.clusters[self.labels[name]]


def _correlation_distance(corr: CorrelationResult, names: list[str]) -> np.ndarray:
    idx = [corr.names.index(n) for n in names]
    sub = corr.matrix[np.ix_(idx, idx)]
    if np.isnan(sub).any():
        raise AnalysisError(
            "correlation matrix contains NaN; prune constant variables first"
        )
    distance = 1.0 - np.abs(sub)
    distance = np.clip((distance + distance.T) / 2.0, 0.0, 1.0)
    np.fill_diagonal(distance, 0.0)
    return distance


def cluster_by_correlation(
    corr: CorrelationResult,
    names: list[str] | None = None,
    distance_threshold: float = 0.6,
    method: str = "average",
) -> ClusteringResult:
    """Cut an agglomerative tree over ``1 - |r|`` at ``distance_threshold``.

    Parameters
    ----------
    corr:
        Full-ESVL correlation result.
    names:
        Variables to cluster (default: all non-NaN columns of ``corr``).
    distance_threshold:
        Maximum within-cluster cophenetic distance; 0.6 keeps pairs with
        |r| ≳ 0.4 together under average linkage.
    """
    if names is None:
        names = [
            n for i, n in enumerate(corr.names)
            if not np.isnan(corr.matrix[i]).all()
        ]
    if len(names) < 2:
        return ClusteringResult(
            clusters=[list(names)],
            labels={n: 0 for n in names},
            linkage=np.zeros((0, 4)),
            names=list(names),
        )
    distance = _correlation_distance(corr, names)
    condensed = squareform(distance, checks=False)
    linkage = hierarchy.linkage(condensed, method=method)
    flat = hierarchy.fcluster(linkage, t=distance_threshold, criterion="distance")
    clusters: dict[int, list[str]] = {}
    for name, cluster_id in zip(names, flat):
        clusters.setdefault(int(cluster_id), []).append(name)
    ordered = [clusters[k] for k in sorted(clusters)]
    labels = {
        name: idx for idx, members in enumerate(ordered) for name in members
    }
    return ClusteringResult(
        clusters=ordered, labels=labels, linkage=linkage, names=list(names)
    )


def dendrogram_order(result: ClusteringResult) -> list[str]:
    """Leaf order of the dendrogram (the Fig. 5 heat-map axis order)."""
    if result.linkage.shape[0] == 0:
        return list(result.names)
    leaves = hierarchy.leaves_list(result.linkage)
    return [result.names[i] for i in leaves]
