"""ARES — data-driven vulnerability assessment of robotic aerial vehicles.

A from-scratch Python reproduction of "Get Your Cyber-Physical Tests
Done! Data-Driven Vulnerability Assessment of Robotic Aerial Vehicles"
(DSN 2023): a quadrotor/ArduCopter simulation substrate, the ARES
profiling → statistical identification → RL exploit-generation pipeline,
and the three defense families the paper evades.

Quickstart::

    from repro import Ares, AresConfig

    ares = Ares(AresConfig(controller_kind="PID"))
    ares.profile()            # fly benign missions, build the ESVL
    result = ares.identify()  # Algorithm 1 -> TSVL
    ares.exploit(result.tsvl[0], failure="uncontrolled")
    summary = ares.report().render()   # a string — the library never prints

Library layers report through return values and ``logging`` (see
:mod:`repro.obs`); user-facing output is rendered only by the CLI layer
(``python -m repro ...``). Stage progress is logged on the ``repro.*``
loggers — enable it with ``repro.obs.configure_logging("INFO")`` or the
CLI's ``--log-level``/``--log-json`` flags.
"""

from repro.core import Ares, AresConfig, AssessmentReport, ExploitOutcome
from repro.exceptions import (
    AnalysisError,
    ControlError,
    DetectionAlarm,
    LinkError,
    MemoryAccessViolation,
    MissionError,
    ParameterError,
    ParameterRangeError,
    ReproError,
    RLError,
    SensorError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "Ares",
    "AresConfig",
    "AssessmentReport",
    "ControlError",
    "DetectionAlarm",
    "ExploitOutcome",
    "LinkError",
    "MemoryAccessViolation",
    "MissionError",
    "ParameterError",
    "ParameterRangeError",
    "RLError",
    "ReproError",
    "SensorError",
    "SimulationError",
    "__version__",
]
