"""Memory protection unit: per-region access checks.

Mirrors the Cortex-M behaviour of Section II-B: an access is checked
against the target region's attributes and the requesting context; a
violation raises :class:`MemoryAccessViolation` (the "abnormal signal").
"""

from __future__ import annotations

from repro.exceptions import MemoryAccessViolation
from repro.memory.layout import AccessMode, MemoryLayout

__all__ = ["Mpu"]


class Mpu:
    """Access mediator over a :class:`MemoryLayout`.

    A *context* is the region whose code is executing. Kernel context
    (``context=None``) may access everything; task context may access only
    its own region — the privilege separation that confines the paper's
    attacker to one compromised region.
    """

    def __init__(self, layout: MemoryLayout):
        self.layout = layout
        self._violations: list[tuple[int, int, str | None]] = []

    @property
    def violations(self) -> list[tuple[int, int, str | None]]:
        """Recorded (address, access, context) violations."""
        return list(self._violations)

    def check(self, address: int, access: int, context: str | None = None) -> None:
        """Validate one access; raises on violation.

        Parameters
        ----------
        address:
            Target address.
        access:
            :class:`AccessMode` flags requested.
        context:
            Name of the region whose code performs the access, or ``None``
            for privileged (kernel) mode.
        """
        region = self.layout.region_of(address)
        access_name = {AccessMode.READ: "read", AccessMode.WRITE: "write"}.get(
            access, f"access({access})"
        )
        if region is None:
            self._violations.append((address, access, context))
            raise MemoryAccessViolation(address, access_name, None)
        if not region.allows(access):
            self._violations.append((address, access, context))
            raise MemoryAccessViolation(address, access_name, region.name)
        if context is not None and context != region.name:
            # Unprivileged cross-region access is denied.
            self._violations.append((address, access, context))
            raise MemoryAccessViolation(address, access_name, region.name)

    def can_access(self, address: int, access: int, context: str | None = None) -> bool:
        """Non-raising variant of :meth:`check` (does not record)."""
        region = self.layout.region_of(address)
        if region is None or not region.allows(access):
            return False
        return context is None or context == region.name
