"""The attacker's memory view: one compromised MPU region.

Implements the paper's threat model (Section III-B): the attacker "has
successfully exploited one individual isolated memory region, thus can
perform any data modifications ... in that single compromised memory
region". Reads and writes to variables in other regions raise
:class:`MemoryAccessViolation`, exactly as the MPU would signal.
"""

from __future__ import annotations

from repro.memory.layout import AccessMode, MemoryLayout
from repro.memory.mpu import Mpu

__all__ = ["CompromisedRegionView"]


class CompromisedRegionView:
    """Variable-level read/write access confined to one region."""

    def __init__(self, layout: MemoryLayout, mpu: Mpu, region_name: str):
        layout.region(region_name)  # validate early
        self.layout = layout
        self.mpu = mpu
        self.region_name = region_name
        self._writes: list[tuple[str, float]] = []

    @property
    def write_log(self) -> list[tuple[str, float]]:
        """Chronological (variable, value) record of successful writes."""
        return list(self._writes)

    def accessible_variables(self) -> list[str]:
        """Variables the attacker can reach (the legitimate memory view)."""
        return self.layout.variable_names(self.region_name)

    def can_write(self, name: str) -> bool:
        """Whether ``name`` is writable from the compromised region."""
        try:
            binding = self.layout.variable(name)
        except Exception:
            return False
        return binding.writable and self.mpu.can_access(
            binding.address, AccessMode.WRITE, context=self.region_name
        )

    def read(self, name: str) -> float:
        """Read a variable, enforcing the MPU."""
        binding = self.layout.variable(name)
        self.mpu.check(binding.address, AccessMode.READ, context=self.region_name)
        return binding.read()

    def write(self, name: str, value: float) -> None:
        """Overwrite a variable, enforcing the MPU.

        This is the attacker's single primitive: all of the paper's
        manipulations (``PIDR.INTEG``, the input error, the output scaler)
        reduce to calls of this method.
        """
        binding = self.layout.variable(name)
        self.mpu.check(binding.address, AccessMode.WRITE, context=self.region_name)
        binding.write(value)
        self._writes.append((name, float(value)))
