"""Memory layout: MPU regions and variable→address bindings.

Models the ARM Cortex-M memory picture of Section II-B: internal SRAM and
flash divided into MPU regions with per-region access permissions. Every
traceable state variable is *bound* to an address inside a region, so the
attacker's reach is exactly "any data in the one compromised region"
(Section III-B) — e.g. all rate-PID intermediates live together in the
stabilizer region because the stabilizer process runs them in one task.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import MemoryAccessViolation, ReproError

__all__ = ["AccessMode", "MemoryRegion", "VariableBinding", "MemoryLayout"]


class AccessMode:
    """Access permission flags (subset of MPU attributes)."""

    NONE = 0
    READ = 1
    WRITE = 2
    READ_WRITE = 3


@dataclass(frozen=True)
class MemoryRegion:
    """One MPU-protected region."""

    name: str
    base: int
    size: int
    permissions: int = AccessMode.READ_WRITE
    description: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ReproError(f"region '{self.name}' must have positive size")
        if self.base < 0:
            raise ReproError(f"region '{self.name}' has negative base address")

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this region."""
        return self.base <= address < self.end

    def allows(self, access: int) -> bool:
        """Whether the region's permissions include ``access``."""
        return (self.permissions & access) == access


@dataclass
class VariableBinding:
    """A named state variable bound to an address with live accessors."""

    name: str
    address: int
    region: str
    getter: Callable[[], float] = field(repr=False)
    setter: Callable[[float], None] | None = field(repr=False, default=None)

    @property
    def writable(self) -> bool:
        """Whether the binding has a setter (code constants do not)."""
        return self.setter is not None

    def read(self) -> float:
        """Current value of the variable."""
        return float(self.getter())

    def write(self, value: float) -> None:
        """Overwrite the variable in place."""
        if self.setter is None:
            raise MemoryAccessViolation(self.address, "write", self.region)
        self.setter(float(value))


class MemoryLayout:
    """Region table + variable map for one firmware image."""

    def __init__(self):
        self._regions: dict[str, MemoryRegion] = {}
        self._variables: dict[str, VariableBinding] = {}
        self._next_free: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Regions
    # ------------------------------------------------------------------ #
    def add_region(self, region: MemoryRegion) -> None:
        """Register a region; overlapping or duplicate regions are errors."""
        if region.name in self._regions:
            raise ReproError(f"region '{region.name}' already defined")
        for other in self._regions.values():
            if region.base < other.end and other.base < region.end:
                raise ReproError(
                    f"region '{region.name}' overlaps '{other.name}'"
                )
        self._regions[region.name] = region
        self._next_free[region.name] = region.base

    def region(self, name: str) -> MemoryRegion:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise ReproError(f"unknown memory region '{name}'") from None

    def regions(self) -> list[MemoryRegion]:
        """All regions, ordered by base address."""
        return sorted(self._regions.values(), key=lambda r: r.base)

    def region_of(self, address: int) -> MemoryRegion | None:
        """The region containing ``address``, if any."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #
    def bind(
        self,
        name: str,
        region_name: str,
        getter: Callable[[], float],
        setter: Callable[[float], None] | None = None,
        size: int = 4,
    ) -> VariableBinding:
        """Place a variable at the next free address of ``region_name``."""
        if name in self._variables:
            raise ReproError(f"variable '{name}' already bound")
        region = self.region(region_name)
        address = self._next_free[region_name]
        if address + size > region.end:
            raise ReproError(f"region '{region_name}' is full")
        self._next_free[region_name] = address + size
        binding = VariableBinding(
            name=name, address=address, region=region_name,
            getter=getter, setter=setter,
        )
        self._variables[name] = binding
        return binding

    def variable(self, name: str) -> VariableBinding:
        """Look up a variable binding by qualified name."""
        try:
            return self._variables[name]
        except KeyError:
            raise ReproError(f"unknown state variable '{name}'") from None

    def variables(self, region_name: str | None = None) -> list[VariableBinding]:
        """All bindings, optionally restricted to one region."""
        bindings = sorted(self._variables.values(), key=lambda b: b.address)
        if region_name is None:
            return bindings
        self.region(region_name)  # validate the name
        return [b for b in bindings if b.region == region_name]

    def variable_names(self, region_name: str | None = None) -> list[str]:
        """Names of all bound variables (optionally one region)."""
        return [b.name for b in self.variables(region_name)]
