"""MPU memory model: regions, permissions and the attacker's view."""

from repro.memory.attacker import CompromisedRegionView
from repro.memory.layout import AccessMode, MemoryLayout, MemoryRegion, VariableBinding
from repro.memory.mpu import Mpu

__all__ = [
    "AccessMode",
    "CompromisedRegionView",
    "MemoryLayout",
    "MemoryRegion",
    "Mpu",
    "VariableBinding",
]
