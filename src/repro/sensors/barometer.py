"""Barometric altimeter model (the BARO dataflash message source)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.base import NoiseModel, RateLimitedSensor
from repro.sim.rigidbody import RigidBodyState

__all__ = ["BaroSample", "Barometer"]

#: Sea-level standard pressure, Pa.
_P0 = 101_325.0
#: Scale height of the isothermal atmosphere approximation, m.
_SCALE_HEIGHT = 8434.0


@dataclass
class BaroSample:
    """One barometer measurement."""

    altitude: float  # m above the NED origin
    pressure: float  # Pa
    temperature: float  # deg C
    time_s: float


class Barometer(RateLimitedSensor):
    """Barometer with altitude noise and a slow drift term."""

    def __init__(
        self,
        rate_hz: float = 50.0,
        altitude_std: float = 0.12,
        drift_std: float = 0.002,
        temperature_c: float = 22.0,
        seed: int | None = 0,
    ):
        super().__init__(rate_hz)
        self.temperature_c = temperature_c
        self._noise = NoiseModel(
            altitude_std, bias_instability=drift_std, seed=seed, dims=1
        )

    def reset(self) -> None:
        """Clear held sample and rewind the noise/drift stream."""
        super().reset()
        self._noise.reset()

    def _measure(self, time_s: float, state: RigidBodyState) -> BaroSample:
        truth = np.array([state.altitude])
        noisy_alt = float(self._noise.apply(truth, 1.0 / self.rate_hz)[0])
        pressure = _P0 * np.exp(-max(noisy_alt, -100.0) / _SCALE_HEIGHT)
        return BaroSample(
            altitude=noisy_alt,
            pressure=float(pressure),
            temperature=self.temperature_c,
            time_s=time_s,
        )
