"""3-axis magnetometer model (the MAG dataflash message source)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.base import NoiseModel, RateLimitedSensor
from repro.sim.rigidbody import RigidBodyState

__all__ = ["MagSample", "Magnetometer"]


@dataclass
class MagSample:
    """One magnetometer measurement in the body frame (milligauss)."""

    field: np.ndarray
    time_s: float


class Magnetometer(RateLimitedSensor):
    """Magnetometer measuring a fixed world-frame field rotated into body.

    Default field: 400 mG north, 0 east, 450 mG down — a mid-latitude
    northern-hemisphere value, matching what ArduPilot's compass sees.
    """

    def __init__(
        self,
        rate_hz: float = 100.0,
        field_world: np.ndarray | None = None,
        noise_std: float = 3.0,
        hard_iron: np.ndarray | None = None,
        seed: int | None = 0,
    ):
        super().__init__(rate_hz)
        self.field_world = (
            np.asarray(field_world, dtype=float)
            if field_world is not None
            else np.array([400.0, 0.0, 450.0])
        )
        self.hard_iron = (
            np.asarray(hard_iron, dtype=float) if hard_iron is not None else np.zeros(3)
        )
        self._noise = NoiseModel(noise_std, seed=seed)

    def reset(self) -> None:
        """Clear held sample and rewind the noise stream."""
        super().reset()
        self._noise.reset()

    def _measure(self, time_s: float, state: RigidBodyState) -> MagSample:
        # Inline quat_inverse_rotate with the cross products expanded —
        # identical arithmetic (and bits), but ~25x faster than np.cross
        # for single 3-vectors, which matters at the 100 Hz compass rate.
        q = state.quaternion
        v0, v1, v2 = self.field_world
        w = q[0]
        ux, uy, uz = -q[1], -q[2], -q[3]
        t0 = (uy * v2 - uz * v1) + w * v0
        t1 = (uz * v0 - ux * v2) + w * v1
        t2 = (ux * v1 - uy * v0) + w * v2
        field_body = np.array(
            [
                v0 + 2.0 * (uy * t2 - uz * t1),
                v1 + 2.0 * (uz * t0 - ux * t2),
                v2 + 2.0 * (ux * t1 - uy * t0),
            ]
        )
        noisy = self._noise.apply(field_body + self.hard_iron, 1.0 / self.rate_hz)
        return MagSample(field=noisy, time_s=time_s)
