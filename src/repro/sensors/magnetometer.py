"""3-axis magnetometer model (the MAG dataflash message source)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.base import NoiseModel, RateLimitedSensor
from repro.sim.rigidbody import RigidBodyState
from repro.utils.math3d import quat_inverse_rotate

__all__ = ["MagSample", "Magnetometer"]


@dataclass
class MagSample:
    """One magnetometer measurement in the body frame (milligauss)."""

    field: np.ndarray
    time_s: float


class Magnetometer(RateLimitedSensor):
    """Magnetometer measuring a fixed world-frame field rotated into body.

    Default field: 400 mG north, 0 east, 450 mG down — a mid-latitude
    northern-hemisphere value, matching what ArduPilot's compass sees.
    """

    def __init__(
        self,
        rate_hz: float = 100.0,
        field_world: np.ndarray | None = None,
        noise_std: float = 3.0,
        hard_iron: np.ndarray | None = None,
        seed: int | None = 0,
    ):
        super().__init__(rate_hz)
        self.field_world = (
            np.asarray(field_world, dtype=float)
            if field_world is not None
            else np.array([400.0, 0.0, 450.0])
        )
        self.hard_iron = (
            np.asarray(hard_iron, dtype=float) if hard_iron is not None else np.zeros(3)
        )
        self._noise = NoiseModel(noise_std, seed=seed)

    def reset(self) -> None:
        """Clear held sample and rewind the noise stream."""
        super().reset()
        self._noise.reset()

    def _measure(self, time_s: float, state: RigidBodyState) -> MagSample:
        field_body = quat_inverse_rotate(state.quaternion, self.field_world)
        noisy = self._noise.apply(field_body + self.hard_iron, 1.0 / self.rate_hz)
        return MagSample(field=noisy, time_s=time_s)
