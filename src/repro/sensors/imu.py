"""Inertial measurement unit: 3-axis gyroscope + 3-axis accelerometer.

Produces the GyrX/GyrY/GyrZ and AccX/AccY/AccZ signals that appear in the
paper's KSVL (Fig. 3) and the IMU dataflash message.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.base import NoiseModel
from repro.sim.quadrotor import QuadrotorModel
from repro.utils.rng import make_rng

__all__ = ["ImuSample", "Imu"]


@dataclass
class ImuSample:
    """One IMU measurement in the body frame."""

    gyro: np.ndarray  # rad/s
    accel: np.ndarray  # m/s², specific force (reads -g when at rest)
    time_s: float


class Imu:
    """MEMS IMU model with per-axis noise, bias walk and motor vibration.

    The accelerometer reports specific force: the quadrotor plant already
    computes it (thrust + drag + contact forces over mass, gravity
    excluded), so a vehicle at rest reads ≈9.81 m/s² on the body-up axis.
    """

    def __init__(
        self,
        gyro_noise_std: float = 0.002,
        gyro_bias_std: float = 0.002,
        gyro_bias_instability: float = 0.0001,
        accel_noise_std: float = 0.05,
        accel_bias_std: float = 0.05,
        accel_bias_instability: float = 0.0005,
        vibration_gain: float = 0.02,
        seed: int | None = 0,
    ):
        self.gyro_noise = NoiseModel(
            gyro_noise_std, gyro_bias_std, gyro_bias_instability, seed=seed
        )
        self.accel_noise = NoiseModel(
            accel_noise_std,
            accel_bias_std,
            accel_bias_instability,
            seed=None if seed is None else seed + 1,
        )
        self.vibration_gain = vibration_gain
        self._vibration_seed = None if seed is None else seed + 2
        self._vibration_rng = make_rng(self._vibration_seed)

    def reset(self) -> None:
        """Rewind noise models and the vibration stream (replays identically)."""
        self.gyro_noise.reset()
        self.accel_noise.reset()
        self._vibration_rng = make_rng(self._vibration_seed)

    def sample(self, vehicle: QuadrotorModel, time_s: float, dt: float) -> ImuSample:
        """Measure the vehicle's angular rate and specific force."""
        state = vehicle.state
        gyro = self.gyro_noise.apply(state.omega_body, dt)
        accel = self.accel_noise.apply(vehicle.specific_force_body, dt)

        # Propeller-imbalance vibration scales with total thrust; it is what
        # the VIBE dataflash message records on real vehicles.
        thrust_fraction = float(
            vehicle.motors.thrusts.sum() / (4.0 * vehicle.airframe.motor_max_thrust)
        )
        vibration_std = self.vibration_gain * thrust_fraction
        if vibration_std > 0.0:
            accel = accel + self._vibration_rng.normal(0.0, vibration_std, size=3)
        return ImuSample(gyro=gyro, accel=accel, time_s=time_s)
