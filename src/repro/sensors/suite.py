"""Sensor suite: samples every onboard sensor against the simulated plant."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensors.barometer import Barometer, BaroSample
from repro.sensors.gps import Gps, GpsSample
from repro.sensors.imu import Imu, ImuSample
from repro.sensors.magnetometer import Magnetometer, MagSample
from repro.sim.quadrotor import QuadrotorModel

__all__ = ["SensorReadings", "SensorSuite"]


@dataclass
class SensorReadings:
    """All sensor outputs for one control cycle."""

    imu: ImuSample
    gps: GpsSample
    baro: BaroSample
    mag: MagSample
    time_s: float


class SensorSuite:
    """Full avionics sensor set wired to one vehicle."""

    def __init__(self, seed: int | None = 0):
        offset = 0 if seed is None else seed
        self.imu = Imu(seed=None if seed is None else offset + 10)
        self.gps = Gps(seed=None if seed is None else offset + 20)
        self.baro = Barometer(seed=None if seed is None else offset + 30)
        self.mag = Magnetometer(seed=None if seed is None else offset + 40)
        #: Optional repro.faults.SensorFaultInjector; None = pristine sensors.
        self.fault_injector = None

    def reset(self) -> None:
        """Reset every sensor (bias walks, latency pipelines, held samples)."""
        self.imu.reset()
        self.gps.reset()
        self.baro.reset()
        self.mag.reset()
        if self.fault_injector is not None:
            self.fault_injector.reset()

    def sample(self, vehicle: QuadrotorModel, time_s: float, dt: float) -> SensorReadings:
        """Sample all sensors for the current control cycle."""
        self.gps.record_truth(time_s, vehicle.state)
        readings = SensorReadings(
            imu=self.imu.sample(vehicle, time_s, dt),
            gps=self.gps.sample(time_s),
            baro=self.baro.sample(time_s, vehicle.state),
            mag=self.mag.sample(time_s, vehicle.state),
            time_s=time_s,
        )
        if self.fault_injector is not None:
            readings = self.fault_injector.apply(readings, time_s)
        return readings
