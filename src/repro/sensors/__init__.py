"""Onboard sensor models (IMU, GPS, barometer, magnetometer)."""

from repro.sensors.barometer import Barometer, BaroSample
from repro.sensors.base import NoiseModel, RateLimitedSensor
from repro.sensors.gps import Gps, GpsSample
from repro.sensors.imu import Imu, ImuSample
from repro.sensors.magnetometer import Magnetometer, MagSample
from repro.sensors.suite import SensorReadings, SensorSuite

__all__ = [
    "Barometer",
    "BaroSample",
    "Gps",
    "GpsSample",
    "Imu",
    "ImuSample",
    "Magnetometer",
    "MagSample",
    "NoiseModel",
    "RateLimitedSensor",
    "SensorReadings",
    "SensorSuite",
]
