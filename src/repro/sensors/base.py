"""Common sensor machinery: noise, bias and rate-limited sampling."""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SensorError
from repro.utils.rng import make_rng

__all__ = ["NoiseModel", "RateLimitedSensor"]


class NoiseModel:
    """Additive Gaussian noise with a slowly drifting bias.

    ``bias_instability`` is the standard deviation of a random-walk bias per
    sqrt(second), the dominant low-frequency error of MEMS sensors.
    """

    def __init__(
        self,
        std: float,
        bias_std: float = 0.0,
        bias_instability: float = 0.0,
        seed: int | None = 0,
        dims: int = 3,
    ):
        if std < 0.0 or bias_std < 0.0 or bias_instability < 0.0:
            raise SensorError("noise magnitudes must be non-negative")
        self.std = std
        self.bias_std = bias_std
        self.bias_instability = bias_instability
        self.dims = dims
        self._seed = seed
        self._rng = make_rng(seed)
        self._bias = self._rng.normal(0.0, bias_std, size=dims) if bias_std else np.zeros(dims)
        self._initial_bias = self._bias.copy()

    @property
    def bias(self) -> np.ndarray:
        """Current bias vector."""
        return self._bias

    def reset(self) -> None:
        """Rewind to the as-constructed state.

        Rebuilds the RNG from the stored seed and re-draws the initial
        bias, so a reset model replays the *identical* noise/bias stream
        — a re-run after reset is bit-for-bit the first run.
        """
        self._rng = make_rng(self._seed)
        self._bias = (
            self._rng.normal(0.0, self.bias_std, size=self.dims)
            if self.bias_std
            else np.zeros(self.dims)
        )
        self._initial_bias = self._bias.copy()

    def draw(self, dt: float) -> np.ndarray:
        """Advance the bias walk and return this step's white-noise draw.

        This is the RNG-consuming half of :meth:`apply`, split out so a
        batched engine can keep the per-lane draws (stream fidelity) while
        batching the post-draw arithmetic. The RNG call order — bias-walk
        normal first, then the white-noise normal — is exactly
        :meth:`apply`'s, so ``truth + self.bias + draw(dt)`` reproduces it
        bit for bit.
        """
        if self.bias_instability > 0.0:
            # One fused standard_normal draw: ``normal(0, s, d)`` is
            # bitwise ``standard_normal(d) * s`` and consumes the stream
            # per element, so splitting one 2d-draw reproduces the two
            # 3-draws exactly (verified across seeds and magnitudes).
            # math.sqrt == np.sqrt bitwise on scalars.
            d = self.dims
            z = self._rng.standard_normal(2 * d)
            self._bias = self._bias + z[:d] * (
                self.bias_instability * math.sqrt(dt)
            )
            return z[d:] * self.std
        return self._rng.normal(0.0, self.std, size=self.dims)

    def apply(self, truth: np.ndarray, dt: float) -> np.ndarray:
        """Corrupt a truth vector with bias walk + white noise."""
        noise = self.draw(dt)
        return truth + self._bias + noise


class RateLimitedSensor:
    """Base class for sensors that sample slower than the physics rate.

    Subclasses implement :meth:`_measure`; :meth:`sample` returns a fresh
    measurement only when the sensor period has elapsed, otherwise the last
    held value (like polling a real device register).
    """

    def __init__(self, rate_hz: float):
        if rate_hz <= 0.0:
            raise SensorError(f"sensor rate must be positive, got {rate_hz}")
        self.rate_hz = rate_hz
        self._period = 1.0 / rate_hz
        self._last_sample_time = -np.inf
        self._held_value = None

    @property
    def has_sample(self) -> bool:
        """Whether at least one measurement has been produced."""
        return self._held_value is not None

    def reset(self) -> None:
        """Forget the held measurement and timing."""
        self._last_sample_time = -np.inf
        self._held_value = None

    def due(self, time_s: float) -> bool:
        """Whether :meth:`sample` at ``time_s`` would take a fresh measurement."""
        return time_s - self._last_sample_time >= self._period - 1e-12

    def hold(self, value, time_s: float) -> None:
        """Install an externally computed measurement as the held sample.

        The batched engine measures due lanes itself (per-lane RNG draws,
        batched arithmetic) and parks the result here, so the sensor's
        refresh clock and held value stay exactly as if :meth:`sample`
        had produced it.
        """
        self._held_value = value
        self._last_sample_time = time_s

    def sample(self, time_s: float, *args, **kwargs):
        """Return the measurement for ``time_s`` (held or refreshed)."""
        # Inline of due(): this runs every physics step on the scalar path.
        if time_s - self._last_sample_time >= self._period - 1e-12:
            self._held_value = self._measure(time_s, *args, **kwargs)
            self._last_sample_time = time_s
        return self._held_value

    def _measure(self, time_s: float, *args, **kwargs):
        raise NotImplementedError
