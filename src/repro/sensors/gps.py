"""GPS receiver model: 10 Hz position/velocity with latency and noise."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sensors.base import NoiseModel, RateLimitedSensor
from repro.sim.rigidbody import RigidBodyState

__all__ = ["GpsSample", "Gps"]


@dataclass
class GpsSample:
    """One GPS fix in the local NED frame."""

    position: np.ndarray  # m, NED
    velocity: np.ndarray  # m/s, NED
    num_sats: int
    hdop: float
    time_s: float


class Gps(RateLimitedSensor):
    """GPS with horizontal/vertical noise and a fixed pipeline delay.

    Parameters mirror a consumer u-blox module: 10 Hz updates, ~1.2 m
    horizontal sigma, 100-200 ms latency.
    """

    def __init__(
        self,
        rate_hz: float = 10.0,
        horizontal_std: float = 1.2,
        vertical_std: float = 2.0,
        velocity_std: float = 0.1,
        latency_s: float = 0.05,
        num_sats: int = 14,
        hdop: float = 0.8,
        seed: int | None = 0,
    ):
        super().__init__(rate_hz)
        self.latency_s = latency_s
        self.num_sats = num_sats
        self.hdop = hdop
        self._pos_noise = NoiseModel(1.0, seed=seed)  # std applied per-axis below
        self._vel_noise = NoiseModel(velocity_std, seed=None if seed is None else seed + 1)
        self._axis_std = np.array([horizontal_std, horizontal_std, vertical_std])
        self._history: deque[tuple[float, np.ndarray, np.ndarray]] = deque(maxlen=512)

    def reset(self) -> None:
        """Clear held sample, latency history, and rewind noise streams."""
        super().reset()
        self._history.clear()
        self._pos_noise.reset()
        self._vel_noise.reset()

    def record_truth(self, time_s: float, state: RigidBodyState) -> None:
        """Push ground truth into the latency pipeline (call every step)."""
        self._history.append((time_s, state.position.copy(), state.velocity.copy()))

    def _measure(self, time_s: float) -> GpsSample:
        target_time = time_s - self.latency_s
        # Use the newest history entry no newer than the delayed timestamp.
        # The history is time-ordered, so walk backwards and stop at the
        # first qualifying entry: O(latency window), not O(history).
        position = np.zeros(3)
        velocity = np.zeros(3)
        for t, pos, vel in reversed(self._history):
            if t <= target_time:
                position, velocity = pos, vel
                break
        noisy_pos = position + self._pos_noise.apply(np.zeros(3), 1.0) * self._axis_std
        noisy_vel = self._vel_noise.apply(velocity, 1.0)
        return GpsSample(
            position=noisy_pos,
            velocity=noisy_vel,
            num_sats=self.num_sats,
            hdop=self.hdop,
            time_s=time_s,
        )
