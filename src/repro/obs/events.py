"""Live campaign event bus: structured progress events over a queue.

The campaign runner (:mod:`repro.experiments.campaign`) is supervised by
the parent process, but until now it reported nothing until the whole
campaign returned. This module adds the real-time layer: every execution
path (serial, process-pool, vectorized, sharded-vectorized) emits
structured events — seed started / cached / retried / timeout / failed /
finished, chunk dispatch, throttled heartbeats — into an
:class:`EventBus` that appends them to a JSONL event log
(``schemas/events.schema.json``) and, opt-in, renders a live progress
line with an ETA derived from the per-seed duration histogram.

Pool workers cannot call the parent's bus directly; they put pre-built
event records on a ``multiprocessing.Manager`` queue
(:func:`queue_event`) and the parent drains it every supervisor tick
(:meth:`EventBus.drain`). Event delivery is strictly observational: the
(seed, attempt)-ordered telemetry merge and the seed-ordered result
aggregation never look at the queue, so delivery order cannot perturb a
result — streaming on vs. off is byte-identical (pinned by
``tests/test_events_blackbox.py``).

``python -m repro obs tail FILE`` pretty-prints an event log and can
follow a running campaign until its ``campaign_finished`` event.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, TextIO

from repro.exceptions import AnalysisError
from repro.obs.metrics import Histogram

__all__ = [
    "EVENT_KINDS",
    "EVENTS_SCHEMA_VERSION",
    "EventBus",
    "format_event",
    "queue_event",
    "tail_events",
]

#: Bump when the event record layout changes (checked by the schema).
EVENTS_SCHEMA_VERSION = 1

#: Every event kind the bus emits (mirrored by the ``kind`` enum in
#: ``schemas/events.schema.json``).
EVENT_KINDS = (
    "campaign_started",
    "seed_started",
    "seed_cached",
    "seed_resumed",
    "seed_retried",
    "seed_finished",
    "seed_failed",
    "seed_timeout",
    "chunk_dispatched",
    "chunk_finished",
    "heartbeat",
    "blackbox_dumped",
    "campaign_finished",
)

#: Minimum seconds between heartbeats / progress-line repaints, so a
#: 0.05 s supervisor tick cannot flood the log or the terminal.
_HEARTBEAT_INTERVAL_S = 0.5
_PROGRESS_INTERVAL_S = 0.1

#: Per-seed duration buckets for the ETA histogram: finer than the
#: metrics default at the sub-second end where smoke campaigns live.
_DURATION_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0,
)

#: Event kinds that mean "one more seed reached a terminal state".
_TERMINAL_KINDS = frozenset({
    "seed_cached", "seed_resumed", "seed_finished", "seed_failed",
    "seed_timeout",
})


def _record(kind: str, experiment: str, seed: int | None = None,
            attempt: int | None = None, status: str | None = None,
            elapsed_s: float | None = None,
            data: dict[str, Any] | None = None) -> dict[str, Any]:
    """One schema-shaped event record."""
    if kind not in EVENT_KINDS:
        raise AnalysisError(f"unknown event kind '{kind}'")
    return {
        "schema": EVENTS_SCHEMA_VERSION,
        "ts": time.time(),
        "kind": kind,
        "experiment": experiment,
        "pid": os.getpid(),
        "seed": None if seed is None else int(seed),
        "attempt": None if attempt is None else int(attempt),
        "status": status,
        "elapsed_s": None if elapsed_s is None else float(elapsed_s),
        "data": dict(data or {}),
    }


def queue_event(queue, kind: str, experiment: str,
                seed: int | None = None, attempt: int | None = None,
                **data: Any) -> None:
    """Worker-side emit: put one record on the parent's event queue.

    Best-effort by contract — a broken or full queue proxy must never
    fail a seed, so every queue error is swallowed. The parent drains
    the queue each supervisor tick and routes records through its bus.
    """
    if queue is None:
        return
    try:
        queue.put_nowait(_record(kind, experiment, seed, attempt,
                                 data=data or None))
    except Exception:  # noqa: BLE001 - observability must never fail a seed
        pass


class EventBus:
    """Parent-side event fan-out: JSONL log plus optional progress line.

    Strictly passive: the bus only appends to its sinks and updates its
    own counters; nothing in the campaign reads bus state back, so an
    enabled bus cannot change a result, a status or a cache entry.
    """

    def __init__(self, experiment: str, total_seeds: int,
                 log_path: str | Path | None = None,
                 progress: bool = False, workers: int = 0,
                 stream: TextIO | None = None):
        self.experiment = experiment
        self.total_seeds = int(total_seeds)
        self.workers = max(int(workers), 1)
        self._log_handle = None
        if log_path is not None:
            path = Path(log_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = path.open("a")
        self._progress = bool(progress)
        self._stream = stream if stream is not None else sys.stderr
        self._started = time.monotonic()
        self._last_heartbeat = 0.0
        self._last_paint = 0.0
        self._painted = False
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.retries = 0
        self._finished = False
        #: Per-seed compute durations, feeding the progress-line ETA.
        self.durations = Histogram(_DURATION_BUCKETS)

    # -- emission ------------------------------------------------------ #
    def emit(self, kind: str, seed: int | None = None,
             attempt: int | None = None, status: str | None = None,
             elapsed_s: float | None = None, **data: Any) -> None:
        """Build one event record and route it to every sink."""
        self.ingest(_record(kind, self.experiment, seed, attempt, status,
                            elapsed_s, data or None))

    def ingest(self, record: dict[str, Any]) -> None:
        """Route a pre-built record (local or drained from a worker)."""
        kind = record.get("kind")
        if kind in _TERMINAL_KINDS:
            self.done += 1
            if kind in ("seed_failed", "seed_timeout"):
                self.failed += 1
            elif kind == "seed_cached":
                self.cached += 1
            elapsed = record.get("elapsed_s")
            if kind == "seed_finished" and elapsed is not None:
                self.durations.observe(float(elapsed))
        elif kind == "seed_retried":
            self.retries += 1
        if self._log_handle is not None:
            self._log_handle.write(
                json.dumps(record, sort_keys=True, default=str) + "\n"
            )
            self._log_handle.flush()
        self._paint()

    def drain(self, queue) -> None:
        """Ingest every record currently waiting on a worker queue."""
        if queue is None:
            return
        while True:
            try:
                record = queue.get_nowait()
            except Exception:  # noqa: BLE001 - Empty, or a broken proxy
                return
            if isinstance(record, dict):
                self.ingest(record)

    def heartbeat(self, in_flight: int = 0, **data: Any) -> None:
        """Emit a throttled heartbeat with progress and step-rate."""
        now = time.monotonic()
        if now - self._last_heartbeat < _HEARTBEAT_INTERVAL_S:
            return
        self._last_heartbeat = now
        wall = max(now - self._started, 1e-9)
        self.emit(
            "heartbeat",
            done=self.done, total=self.total_seeds,
            in_flight=int(in_flight), failed=self.failed,
            seeds_per_s=round(self.done / wall, 3),
            eta_s=round(self.eta_seconds(), 3),
            **data,
        )

    def finish(self, **data: Any) -> None:
        """Emit the terminal ``campaign_finished`` event (at most once).

        Called on the normal exit path with the campaign totals, and
        again from the runner's ``finally`` so an aborted campaign (a
        blown failure budget, ``KeyboardInterrupt``) still terminates
        any ``obs tail --follow`` watching the log.
        """
        if self._finished:
            return
        self._finished = True
        wall = max(time.monotonic() - self._started, 1e-9)
        self.emit(
            "campaign_finished",
            done=self.done, total=self.total_seeds, failed=self.failed,
            cached=self.cached, retries=self.retries,
            wall_s=round(wall, 3),
            **data,
        )

    # -- progress line ------------------------------------------------- #
    def eta_seconds(self) -> float:
        """Remaining-work estimate from the per-seed duration histogram."""
        remaining = max(self.total_seeds - self.done, 0)
        if not remaining or not self.durations.count:
            return 0.0
        per_seed = self.durations.quantile(0.5)
        return remaining * per_seed / self.workers

    def _render_progress(self) -> str:
        parts = [f"{self.experiment}: {self.done}/{self.total_seeds} seeds"]
        extras = []
        if self.cached:
            extras.append(f"{self.cached} cached")
        if self.failed:
            extras.append(f"{self.failed} failed")
        if self.retries:
            extras.append(f"{self.retries} retried")
        if extras:
            parts.append(f"({', '.join(extras)})")
        wall = max(time.monotonic() - self._started, 1e-9)
        parts.append(f"{self.done / wall:.1f} seeds/s")
        eta = self.eta_seconds()
        if self.done < self.total_seeds and eta > 0.0:
            parts.append(f"ETA {eta:.1f}s")
        return " ".join(parts)

    def _paint(self, force: bool = False) -> None:
        if not self._progress:
            return
        now = time.monotonic()
        if not force and now - self._last_paint < _PROGRESS_INTERVAL_S:
            return
        self._last_paint = now
        self._stream.write("\r\x1b[2K" + self._render_progress())
        self._stream.flush()
        self._painted = True

    def close(self) -> None:
        """Flush the progress line and close the event log."""
        if self._progress and self._painted:
            self._paint(force=True)
            self._stream.write("\n")
            self._stream.flush()
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None


# --------------------------------------------------------------------- #
# obs tail
# --------------------------------------------------------------------- #
def format_event(record: dict[str, Any]) -> str:
    """One human-readable line per event record."""
    ts = record.get("ts")
    clock = time.strftime("%H:%M:%S", time.gmtime(ts)) if ts else "--:--:--"
    parts = [clock, f"{record.get('kind', '?'):18s}"]
    for key in ("seed", "attempt", "status"):
        value = record.get(key)
        if value is not None:
            parts.append(f"{key}={value}")
    elapsed = record.get("elapsed_s")
    if elapsed is not None:
        parts.append(f"{elapsed:.3f}s")
    data = record.get("data") or {}
    for key in sorted(data):
        parts.append(f"{key}={data[key]}")
    return " ".join(parts)


def tail_events(path: str | Path, follow: bool = False,
                kinds: tuple[str, ...] | None = None,
                stream: TextIO | None = None,
                poll_s: float = 0.2, timeout_s: float | None = None) -> int:
    """Pretty-print an event log; optionally follow a running campaign.

    With ``follow`` the file is polled until a ``campaign_finished``
    event arrives (or ``timeout_s`` elapses). Returns the number of
    events printed. Unknown lines are skipped, so tailing a file that a
    campaign is actively appending to never crashes on a torn write.
    """
    path = Path(path)
    if not follow and not path.exists():
        raise AnalysisError(f"no event log at '{path}'")
    out = stream if stream is not None else sys.stdout
    printed = 0
    offset = 0
    deadline = (time.monotonic() + timeout_s) if timeout_s is not None else None
    while True:
        if path.exists():
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            # Only consume up to the last complete line — a torn write
            # mid-append is reread whole on the next poll. A one-shot
            # tail takes the final unterminated line as-is.
            cut = (chunk.rfind(b"\n") + 1) if follow else len(chunk)
            offset += cut
            for line in chunk[:cut].decode("utf-8", "replace").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                if kinds and record.get("kind") not in kinds:
                    continue
                try:
                    out.write(format_event(record) + "\n")
                except BrokenPipeError:
                    # Downstream pager/head closed the pipe: not an error.
                    return printed
                printed += 1
                if record.get("kind") == "campaign_finished":
                    follow = False
        if not follow:
            return printed
        if deadline is not None and time.monotonic() > deadline:
            return printed
        time.sleep(poll_s)
