"""Render telemetry artifacts as human-readable breakdown tables.

``python -m repro obs summary PATH [PATH ...]`` accepts any mix of trace
files (Chrome trace-event JSON or span JSONL) and metrics snapshots and
renders a phase-time breakdown (per span name: count, total, mean, share
of wall clock) plus counter/gauge/histogram tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import AnalysisError
from repro.obs.metrics import Histogram

__all__ = ["classify_artifact", "load_spans", "render_summary"]


def classify_artifact(path: str | Path) -> str:
    """'trace', 'metrics' or 'unknown', sniffed from the file content."""
    path = Path(path)
    try:
        first = path.read_text().lstrip()
    except OSError as exc:
        raise AnalysisError(f"cannot read telemetry artifact: {exc}") from exc
    if not first:
        # An empty .jsonl is a legal zero-span trace (a campaign that
        # recorded nothing); an empty .json is unclassifiable.
        return "trace" if path.suffix == ".jsonl" else "unknown"
    try:
        if path.suffix == ".jsonl":
            record = json.loads(first.splitlines()[0])
            return "trace" if "duration_s" in record else "unknown"
        document = json.loads(first)
    except json.JSONDecodeError:
        return "unknown"
    if isinstance(document, dict):
        if "traceEvents" in document:
            return "trace"
        if "counters" in document or "histograms" in document:
            return "metrics"
    return "unknown"


def load_spans(path: str | Path) -> list[dict[str, Any]]:
    """Normalised span records from a Chrome trace or a span JSONL file.

    Each record has ``name``, ``start_unix`` (s), ``duration_s`` and
    ``attrs`` regardless of the on-disk format.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    document = json.loads(text)
    spans = []
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        spans.append({
            "name": event["name"],
            "start_unix": float(event.get("ts", 0.0)) / 1e6,
            "duration_s": float(event.get("dur", 0.0)) / 1e6,
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
            "attrs": event.get("args", {}),
        })
    return spans


def _render_trace(path: Path, spans: list[dict[str, Any]]) -> list[str]:
    if not spans:
        return [f"Trace {path}: no spans recorded"]
    starts = [s["start_unix"] for s in spans]
    ends = [s["start_unix"] + s["duration_s"] for s in spans]
    wall = max(ends) - min(starts)
    by_name: dict[str, list[float]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span["duration_s"])
    lines = [
        f"Trace {path} — {len(spans)} spans, "
        f"{len({s['pid'] for s in spans})} process(es), wall {wall:.2f}s",
        f"  {'span':28s} {'count':>6s} {'total_s':>9s} {'mean_s':>9s} "
        f"{'%wall':>6s}",
    ]
    # Sort by total descending with the name as tie-break, so equal-cost
    # phases render in a stable order run over run.
    ordered = sorted(
        by_name.items(), key=lambda item: (-sum(item[1]), item[0])
    )
    for name, durations in ordered:
        total = sum(durations)
        share = 100.0 * total / wall if wall > 0 else 0.0
        lines.append(
            f"  {name:28s} {len(durations):6d} {total:9.3f} "
            f"{total / len(durations):9.4f} {share:5.1f}%"
        )
    return lines


def _render_metrics(path: Path, snapshot: dict[str, Any]) -> list[str]:
    lines = [f"Metrics {path}"]
    # Iterate every table in sorted-key order: registry snapshots are
    # written sorted, but hand-edited or merged files may not be, and
    # the rendered table must be deterministic either way.
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(f"  {'counter':40s} {'value':>12s}")
        for key in sorted(counters):
            value = counters[key]
            rendered = f"{int(value)}" if float(value).is_integer() \
                else f"{value:.4g}"
            lines.append(f"  {key:40s} {rendered:>12s}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append(f"  {'gauge':40s} {'value':>12s}")
        for key in sorted(gauges):
            lines.append(f"  {key:40s} {gauges[key]:12.4g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append(
            f"  {'histogram':28s} {'count':>7s} {'mean':>9s} {'p50':>9s} "
            f"{'p95':>9s} {'p99':>9s} {'max':>9s}"
        )
        for key in sorted(histograms):
            data = histograms[key]
            hist = Histogram(tuple(data.get("bounds", (1.0,))))
            hist.counts = [int(c) for c in data.get("counts", hist.counts)]
            hist.count = int(data.get("count", 0))
            hist.sum = float(data.get("sum", 0.0))
            hist.min = float(data.get("min", 0.0))
            hist.max = float(data.get("max", 0.0))
            lines.append(
                f"  {key:28s} {hist.count:7d} {hist.mean:9.4g} "
                f"{hist.quantile(0.5):9.4g} {hist.quantile(0.95):9.4g} "
                f"{hist.quantile(0.99):9.4g} {hist.max:9.4g}"
            )
    if len(lines) == 1:
        lines.append("  (empty snapshot)")
    return lines


def render_summary(paths: list[str | Path]) -> str:
    """The ``obs summary`` table for any mix of trace/metrics files."""
    if not paths:
        raise AnalysisError("obs summary needs at least one artifact path")
    sections: list[str] = []
    for raw in paths:
        path = Path(raw)
        kind = classify_artifact(path)
        if kind == "trace":
            sections.append("\n".join(_render_trace(path, load_spans(path))))
        elif kind == "metrics":
            snapshot = json.loads(path.read_text())
            sections.append("\n".join(_render_metrics(path, snapshot)))
        else:
            raise AnalysisError(
                f"'{path}' is neither a trace nor a metrics snapshot"
            )
    return "\n\n".join(sections)
