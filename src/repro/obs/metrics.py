"""Near-zero-overhead metrics: counters, gauges and bucketed histograms.

The registry is strictly passive: instruments are plain Python objects
updated with one attribute operation per event, and nothing is written
anywhere until a caller asks for a :meth:`MetricsRegistry.snapshot`.
Instrument lookup (`registry.counter(...)`) does a dict get keyed by
``(name, labels)``, so hot paths fetch their instruments once at
construction time and pay only the increment afterwards.

Two usage modes coexist:

* the **process-global default registry** (:func:`get_registry`) that the
  instrumented library layers use implicitly, and
* **injectable instances** — campaign worker processes install a fresh
  registry around each seed (:func:`use_telemetry` in
  :mod:`repro.obs.tracing`), snapshot it, and ship the snapshot back so
  the parent can :meth:`~MetricsRegistry.merge` child-process metrics
  into its own totals.

Snapshots are plain JSON-able dicts (see ``schemas/metrics.schema.json``)
and merging is associative and commutative on counters/histograms, so
serial and process-pool campaign runs agree on totals.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
]

#: Bump when the snapshot layout changes (checked by the JSON schema).
METRICS_SCHEMA_VERSION = 1

#: Default histogram buckets: log-spaced seconds, good for timings from
#: sub-millisecond decodes to multi-minute campaigns.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)


def _key(name: str, labels: dict[str, Any]) -> str:
    """Render ``name`` + labels into the snapshot key: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (one float add — safe in any hot loop)."""
        self.value += amount


class Gauge:
    """Last-written value (e.g. a rate or a current size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    Observations land in cumulative-style buckets (Prometheus layout:
    ``counts[i]`` counts values ``<= bounds[i]``, with a final +Inf
    bucket), so merging is element-wise addition and quantiles are
    interpolated inside the winning bucket.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, interpolated within the bucket.

        Exact at the recorded min/max; elsewhere accurate to the bucket
        resolution. Returns 0 when empty.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if idx >= len(self.bounds):  # +Inf bucket
                    return self.max
                upper = self.bounds[idx]
                lower = self.bounds[idx - 1] if idx else min(self.min, upper)
                fraction = (
                    (target - (cumulative - bucket_count)) / bucket_count
                    if bucket_count else 1.0
                )
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
        return self.max


class MetricsRegistry:
    """A family of named instruments plus snapshot/merge plumbing."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors (memoised per key) ----------------------- #
    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name`` + labels (created on first use)."""
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``name`` + labels (created on first use)."""
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None,
                  **labels: Any) -> Histogram:
        """The histogram for ``name`` + labels (created on first use)."""
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return instrument

    # -- export / merge ------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """A JSON-able view of every instrument (sorted keys)."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value for key in sorted(self._gauges)
            },
            "histograms": {
                key: {
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min if hist.count else 0.0,
                    "max": hist.max if hist.count else 0.0,
                    "bounds": list(hist.bounds),
                    "counts": list(hist.counts),
                }
                for key, hist in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a child snapshot into this registry.

        Counters and histogram buckets add; gauges take the child's last
        value (a later merge wins, matching "last write" semantics).
        Histograms with different bucket bounds fall back to merging only
        count/sum/min/max into a same-bounds local instrument.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._split_lookup(self.counter, key).inc(float(value))
        for key, value in snapshot.get("gauges", {}).items():
            self._split_lookup(self.gauge, key).set(float(value))
        for key, data in snapshot.get("histograms", {}).items():
            bounds = tuple(data.get("bounds", DEFAULT_BUCKETS))
            hist = self._split_lookup(
                lambda name, **labels: self.histogram(name, bounds, **labels),
                key,
            )
            if not data.get("count"):
                continue
            if tuple(hist.bounds) == bounds:
                for idx, bucket_count in enumerate(data["counts"]):
                    hist.counts[idx] += int(bucket_count)
            else:  # incompatible layouts: keep scalar aggregates only
                hist.counts[-1] += int(data["count"])
            hist.count += int(data["count"])
            hist.sum += float(data["sum"])
            hist.min = min(hist.min, float(data["min"]))
            hist.max = max(hist.max, float(data["max"]))

    def expose_text(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Metric names are sanitized (dots → underscores) and prefixed
        ``repro_``; counters gain the conventional ``_total`` suffix and
        histograms expand into cumulative ``_bucket{le=...}`` series
        plus ``_sum``/``_count``, so the output drops straight into a
        node-exporter textfile collector or any other scrape pipeline.
        Families are emitted in sorted-name order — byte-stable across
        runs for identical contents.
        """
        lines: list[str] = []
        counters = sorted(self._counters.items())
        by_family: dict[str, list[tuple[dict[str, str], float]]] = {}
        for key, counter in counters:
            name, labels = _parse_key(key)
            by_family.setdefault(name, []).append((labels, counter.value))
        for name in sorted(by_family):
            metric = f"{_prom_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            for labels, value in by_family[name]:
                lines.append(f"{metric}{_prom_labels(labels)} {value:g}")
        by_family = {}
        for key, gauge in sorted(self._gauges.items()):
            name, labels = _parse_key(key)
            by_family.setdefault(name, []).append((labels, gauge.value))
        for name in sorted(by_family):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} gauge")
            for labels, value in by_family[name]:
                lines.append(f"{metric}{_prom_labels(labels)} {value:g}")
        hist_family: dict[str, list[tuple[dict[str, str], Histogram]]] = {}
        for key, hist in sorted(self._histograms.items()):
            name, labels = _parse_key(key)
            hist_family.setdefault(name, []).append((labels, hist))
        for name in sorted(hist_family):
            metric = _prom_name(name)
            lines.append(f"# TYPE {metric} histogram")
            for labels, hist in hist_family[name]:
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    bucket = dict(labels, le=f"{bound:g}")
                    lines.append(
                        f"{metric}_bucket{_prom_labels(bucket)} {cumulative}"
                    )
                bucket = dict(labels, le="+Inf")
                lines.append(
                    f"{metric}_bucket{_prom_labels(bucket)} {hist.count}"
                )
                lines.append(f"{metric}_sum{_prom_labels(labels)} "
                             f"{hist.sum:g}")
                lines.append(f"{metric}_count{_prom_labels(labels)} "
                             f"{hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _split_lookup(factory, key: str):
        """Re-resolve a rendered ``name{k=v}`` snapshot key to an instrument."""
        if "{" in key and key.endswith("}"):
            name, _, raw = key.partition("{")
            labels = dict(
                pair.split("=", 1) for pair in raw[:-1].split(",") if "=" in pair
            )
            return factory(name, **labels)
        return factory(key)


def _parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a rendered ``name{k=v,...}`` snapshot key back apart."""
    if "{" in key and key.endswith("}"):
        name, _, raw = key.partition("{")
        labels = dict(
            pair.split("=", 1) for pair in raw[:-1].split(",") if "=" in pair
        )
        return name, labels
    return key, {}


def _prom_name(name: str) -> str:
    """A Prometheus-legal metric name: ``repro_`` + sanitized ``name``."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_labels(labels: dict[str, str]) -> str:
    """Rendered label set (``{k="v",...}``), empty string when none."""
    if not labels:
        return ""

    def escape(value: str) -> str:
        return value.replace("\\", "\\\\").replace('"', '\\"')

    inner = ",".join(
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", k)}="{escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


#: The process-global default registry the instrumented layers use.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current default registry (swappable via :func:`set_registry`)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
