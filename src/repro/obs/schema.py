"""Minimal JSON-Schema validator for the telemetry artifacts.

CI validates every emitted trace/metrics file against the checked-in
schemas under ``schemas/`` before uploading them as workflow artifacts.
The container deliberately carries no ``jsonschema`` dependency, so this
implements the small draft-7 subset those schemas use: ``type``,
``properties`` / ``required`` / ``additionalProperties``, ``items``,
``enum``, ``const``, ``minimum`` / ``maximum``, ``minItems`` and
``patternProperties``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

__all__ = ["validate", "validate_file"]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(instance: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(instance, (int, float)) and not isinstance(instance, bool)
    if expected == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    return isinstance(instance, _TYPES[expected])


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> list[str]:
    """All violations of ``schema`` by ``instance`` (empty list = valid)."""
    errors: list[str] = []
    expected_type = schema.get("type")
    if expected_type is not None:
        allowed = (
            expected_type if isinstance(expected_type, list) else [expected_type]
        )
        if not any(_type_ok(instance, t) for t in allowed):
            return [
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            ]
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']}")
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: {instance!r} != const {schema['const']!r}")
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            errors.append(f"{path}: {instance} > maximum {schema['maximum']}")
    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in instance:
                errors.append(f"{path}: missing required property '{name}'")
        pattern_props = {
            re.compile(pattern): sub
            for pattern, sub in schema.get("patternProperties", {}).items()
        }
        for name, value in instance.items():
            if name in properties:
                errors.extend(validate(value, properties[name], f"{path}.{name}"))
                continue
            matched = False
            for pattern, sub in pattern_props.items():
                if pattern.search(name):
                    matched = True
                    errors.extend(validate(value, sub, f"{path}.{name}"))
            if matched:
                continue
            extra = schema.get("additionalProperties", True)
            if extra is False:
                errors.append(f"{path}: unexpected property '{name}'")
            elif isinstance(extra, dict):
                errors.extend(validate(value, extra, f"{path}.{name}"))
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(
                f"{path}: {len(instance)} items < minItems {schema['minItems']}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for idx, value in enumerate(instance):
                errors.extend(validate(value, items, f"{path}[{idx}]"))
    return errors


def validate_file(artifact_path: str | Path,
                  schema_path: str | Path) -> list[str]:
    """Validate a JSON or JSONL artifact file against a schema file.

    ``.jsonl`` files are validated line by line (the schema describes one
    record); anything else is parsed as a single JSON document.
    """
    artifact_path = Path(artifact_path)
    schema = json.loads(Path(schema_path).read_text())
    if artifact_path.suffix == ".jsonl":
        errors: list[str] = []
        for lineno, line in enumerate(
            artifact_path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"$[line {lineno}]: not valid JSON ({exc})")
                continue
            errors.extend(validate(record, schema, path=f"$[line {lineno}]"))
        return errors
    try:
        document = json.loads(artifact_path.read_text())
    except json.JSONDecodeError as exc:
        return [f"$: not valid JSON ({exc})"]
    return validate(document, schema)
