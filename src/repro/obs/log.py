"""Structured logging: stdlib ``logging`` with a JSON formatter and context.

Library layers log through ordinary ``logging.getLogger("repro...")``
loggers and attach nothing by default — an un-configured process pays
only the stdlib level check per call. :func:`configure_logging` (used by
the CLI's ``--log-level`` / ``--log-json``) installs one handler on the
``"repro"`` root; in JSON mode each record renders as one JSON object
carrying the run context (run-id, experiment, seed) bound via
:func:`log_context`, so campaign logs are machine-triageable
(arXiv:2403.15857-style run artifacts).
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
import time
from contextlib import contextmanager
from typing import Any, TextIO

__all__ = [
    "JsonFormatter",
    "configure_logging",
    "current_context",
    "get_logger",
    "log_context",
]

#: Ambient run context folded into every structured record.
_log_context: contextvars.ContextVar[dict[str, Any]] = contextvars.ContextVar(
    "repro_log_context", default={}
)

#: Attributes of a LogRecord that are stdlib plumbing, not user fields.
_RESERVED = frozenset(vars(
    logging.LogRecord("x", 0, "x", 0, "", (), None)
)) | {"message", "asctime", "taskName"}


def current_context() -> dict[str, Any]:
    """The ambient context fields (run_id/experiment/seed/...)."""
    return dict(_log_context.get())


@contextmanager
def log_context(**fields: Any):
    """Bind extra fields onto every record emitted inside the block.

    The contextvar is restored via ``try``/``finally``, so fields never
    bleed into later records when the wrapped block raises. When
    ``__enter__`` and ``__exit__`` run in different
    :mod:`contextvars` contexts (the CLI holds a context object open
    across a whole command), ``reset`` raises ``ValueError`` — the
    fallback restores the saved mapping explicitly instead of leaking
    the bound fields.
    """
    previous = _log_context.get()
    merged = {**previous, **fields}
    token = _log_context.set(merged)
    try:
        yield merged
    finally:
        try:
            _log_context.reset(token)
        except ValueError:
            # Token minted in another Context: restore by value.
            _log_context.set(previous)


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg, context, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_log_context.get())
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = record.exc_info[0].__name__
            payload["exc_msg"] = str(record.exc_info[1])
        return json.dumps(payload, default=str, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """A namespaced repro logger (``repro.<name>``)."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(
    level: str | int = "INFO",
    json_output: bool = False,
    stream: TextIO | None = None,
) -> logging.Handler:
    """Install one handler on the ``repro`` logger root (idempotent).

    Re-invoking replaces the previously installed obs handler, so tests
    and repeated CLI calls in one process do not stack duplicates.
    Returns the installed handler.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_output:
        handler.setFormatter(JsonFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
        )
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    root.addHandler(handler)
    root.setLevel(level if isinstance(level, int) else level.upper())
    root.propagate = False
    return handler
