"""Blackbox flight recorder: a crash-surviving ring of recent state.

The campaign seeds worth triaging are exactly the ones that leave no
result behind — a worker killed mid-flight, a hung seed shot by the
supervisor, an experiment exception. This module records the last N
control cycles of every vehicle a seed constructs (position, velocity,
quaternion, body rates, PID/mixer outputs, sensor readings, battery,
mode, the active fault schedule and the detector alarm counters) into a
fixed-size ring buffer, and *spools* that ring to disk periodically so
the data survives a hard worker death (``os._exit``, SIGTERM).

Mechanics mirror :mod:`repro.obs.profile`: a module-global session
installed with :func:`blackbox_session` is checked **once, at vehicle
construction** (``Vehicle.__init__`` / ``VectorizedFleet`` lanes), so
the default path pays nothing per step. With a session active, each
attached vehicle appends one frame per control cycle via its
``post_step_hooks`` — inside the ``mission`` stage of the hot-loop
profiler, so recorder cost is attributed alongside the other per-lane
firmware hooks. Frames only *read* state; no RNG is consumed and
nothing is mutated, so recording on vs. off is bit-identical (pinned by
``tests/test_events_blackbox.py``).

The campaign parent promotes the spool of any seed that ends in
crash/timeout/failed/corrupt into a content-addressed artifact
(``bb_<sha256[:16]>.json``, ``schemas/blackbox.schema.json``) and
deletes the spools of clean seeds. ``python -m repro obs blackbox PATH``
summarizes an artifact and can export the last-N-steps trace.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro.exceptions import AnalysisError

__all__ = [
    "BLACKBOX_SCHEMA_VERSION",
    "BlackboxRecorder",
    "BlackboxSession",
    "active_blackbox",
    "blackbox_session",
    "export_blackbox",
    "load_blackbox",
    "promote_spools",
    "spool_dir_for",
    "summarize_blackbox",
    "write_stub_artifact",
]

#: Bump when the artifact layout changes (checked by the schema).
BLACKBOX_SCHEMA_VERSION = 1

#: Ring depth: frames of recent state kept per vehicle. At the default
#: 400 Hz control rate 512 frames ≈ the last 1.28 s of flight.
DEFAULT_CAPACITY = 512

#: Spool cadence in recorded frames per vehicle. Step-count based (never
#: wall clock), so spool timing is deterministic for a given seed.
DEFAULT_SPOOL_EVERY = 2000

_ACTIVE: "BlackboxSession | None" = None


def active_blackbox() -> "BlackboxSession | None":
    """The installed session, or ``None`` (the default, zero-cost path)."""
    return _ACTIVE


def _vec(value, n: int) -> list[float]:
    """A plain float list of length ``n`` (JSON-able frame field)."""
    out = [float(v) for v in value]
    return out[:n] if len(out) >= n else out + [0.0] * (n - len(out))


class BlackboxRecorder:
    """Fixed-size ring of per-step state frames for one vehicle/lane."""

    __slots__ = ("label", "capacity", "frames", "steps_seen", "_vehicle")

    def __init__(self, vehicle, label: str,
                 capacity: int = DEFAULT_CAPACITY):
        self.label = label
        self.capacity = int(capacity)
        self.frames: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.steps_seen = 0
        self._vehicle = vehicle

    def record(self, vehicle=None) -> None:
        """Append one frame (runs as a ``post_step_hooks`` entry).

        Pure reads of the vehicle surface — works unchanged against a
        scalar :class:`~repro.firmware.vehicle.Vehicle` and a
        ``VectorizedFleet`` lane adapter (missing attributes become
        ``None`` fields rather than errors).
        """
        v = vehicle if vehicle is not None else self._vehicle
        state = v.sim.vehicle.state
        frame: dict[str, Any] = {
            "t": float(v.sim.time),
            "step": int(v.sim.step_count),
            "pos": _vec(state.position, 3),
            "vel": _vec(state.velocity, 3),
            "quat": _vec(state.quaternion, 4),
            "omega": _vec(state.omega_body, 3),
            "motors": _vec(v.last_motors, 4),
            "armed": bool(v.armed),
            "crashed": bool(v.sim.vehicle.crashed),
        }
        targets = getattr(v, "last_targets", None)
        frame["targets"] = None if targets is None else [
            float(targets.roll), float(targets.pitch),
            float(targets.yaw), float(targets.throttle),
        ]
        torque = getattr(v, "last_torque", None)
        frame["torque"] = None if torque is None else _vec(torque, 3)
        readings = getattr(v, "last_readings", None)
        if readings is not None:
            frame["gyro"] = _vec(readings.imu.gyro, 3)
            frame["accel"] = _vec(readings.imu.accel, 3)
            frame["baro"] = float(readings.baro.altitude)
        else:
            frame["gyro"] = frame["accel"] = frame["baro"] = None
        battery = getattr(v.sim.vehicle, "battery", None)
        frame["battery_v"] = (
            None if battery is None else float(battery.voltage)
        )
        modes = getattr(v, "modes", None)
        frame["mode"] = None if modes is None else str(modes.mode.name)
        self.frames.append(frame)
        self.steps_seen += 1
        session = _ACTIVE
        if session is not None and \
                self.steps_seen % session.spool_every == 0:
            session.spool()

    def describe(self) -> dict[str, Any]:
        """This recorder's JSON form (one ``vehicles[]`` entry)."""
        v = self._vehicle
        schedule = getattr(v, "fault_schedule", None)
        config = getattr(v, "config", None)
        return {
            "label": self.label,
            "seed": int(getattr(config, "seed", -1)) if config else -1,
            "capacity": self.capacity,
            "steps_seen": self.steps_seen,
            "faults": None if schedule is None else str(schedule),
            "frames": [dict(frame) for frame in self.frames],
        }


class BlackboxSession:
    """All recorders of one seed attempt, plus the spool-to-disk plumbing.

    Installed as the module-global by :func:`blackbox_session`; vehicles
    constructed while it is active attach themselves. The spool file is
    rewritten atomically (tmp + rename), so a worker dying mid-write
    leaves the previous complete spool, never a torn one.
    """

    def __init__(self, spool_dir: str | Path, experiment: str = "",
                 seed: int = 0, attempt: int = 1, label: str | None = None,
                 capacity: int = DEFAULT_CAPACITY,
                 spool_every: int = DEFAULT_SPOOL_EVERY):
        self.spool_dir = Path(spool_dir)
        self.experiment = experiment
        self.seed = int(seed)
        self.attempt = int(attempt)
        self.capacity = int(capacity)
        self.spool_every = max(int(spool_every), 1)
        self.recorders: list[BlackboxRecorder] = []
        name = label if label is not None else f"seed{self.seed}"
        self.spool_path = self.spool_dir / f"{name}.attempt{self.attempt}.json"

    def attach(self, vehicle) -> BlackboxRecorder:
        """Register one vehicle (or fleet lane); called at construction."""
        recorder = BlackboxRecorder(
            vehicle, label=f"vehicle{len(self.recorders)}",
            capacity=self.capacity,
        )
        self.recorders.append(recorder)
        vehicle.post_step_hooks.append(recorder.record)
        return recorder

    def document(self, reason: str) -> dict[str, Any]:
        """The full artifact document for the current ring contents."""
        alarms: dict[str, float] = {}
        try:
            from repro.obs.metrics import get_registry

            snapshot = get_registry().snapshot()
            alarms = {
                key: float(value)
                for key, value in snapshot.get("counters", {}).items()
                if key.startswith("defense.")
            }
        except Exception:  # noqa: BLE001 - recording must never fail a seed
            pass
        return {
            "schema": BLACKBOX_SCHEMA_VERSION,
            "experiment": self.experiment,
            "seed": self.seed,
            "attempt": self.attempt,
            "reason": reason,
            "created_at": time.time(),
            "alarms": alarms,
            "vehicles": [rec.describe() for rec in self.recorders],
        }

    def spool(self, reason: str = "spool") -> Path | None:
        """Atomically (re)write the spool file with the current rings."""
        if not self.recorders:
            return None
        try:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.spool_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(
                self.document(reason), separators=(",", ":"), sort_keys=True,
            ))
            tmp.replace(self.spool_path)
        except OSError:
            return None
        return self.spool_path


@contextmanager
def blackbox_session(spool_dir: str | Path, experiment: str = "",
                     seed: int = 0, attempt: int = 1,
                     label: str | None = None,
                     capacity: int = DEFAULT_CAPACITY,
                     spool_every: int = DEFAULT_SPOOL_EVERY):
    """Install a fresh :class:`BlackboxSession` for the duration of a seed.

    On *every* exit — clean return or exception — the final ring
    contents are spooled, so the parent can promote the flight data of a
    seed whose process dies immediately afterwards (the ``mid_seed``
    chaos point fires right after the experiment body). Exceptions
    propagate unchanged; the exit spool records their type as the
    provisional reason.
    """
    global _ACTIVE
    previous = _ACTIVE
    session = BlackboxSession(spool_dir, experiment, seed, attempt,
                              label=label, capacity=capacity,
                              spool_every=spool_every)
    _ACTIVE = session
    try:
        yield session
    except BaseException as exc:
        session.spool(reason=f"exception:{type(exc).__name__}")
        raise
    else:
        session.spool(reason="end")
    finally:
        _ACTIVE = previous


# --------------------------------------------------------------------- #
# Parent-side promotion
# --------------------------------------------------------------------- #
def spool_dir_for(blackbox_dir: str | Path) -> Path:
    """Where in-flight spools live (promoted or deleted by the parent)."""
    return Path(blackbox_dir) / "spool"


def _write_artifact(blackbox_dir: Path, document: dict[str, Any]) -> Path:
    """Content-address ``document`` into ``blackbox_dir``; returns the path."""
    blackbox_dir.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(document, separators=(",", ":"), sort_keys=True)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    path = blackbox_dir / f"bb_{digest}.json"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(payload)
    tmp.replace(path)
    return path


def promote_spools(blackbox_dir: str | Path, label: str,
                   terminal_reason: str | None,
                   final_attempt: int | None = None) -> list[Path]:
    """Settle every spool of one seed/chunk label after its terminal event.

    ``terminal_reason`` set (crash/timeout/failed/corrupt): every spool
    is promoted — earlier attempts with reason ``"crash"`` (their worker
    died before reporting), the final one with ``terminal_reason``.
    ``terminal_reason`` ``None`` (the seed finished ok): the spool of
    ``final_attempt`` is deleted and earlier-attempt spools — each one a
    crashed attempt that was then retried — are still promoted, so the
    flight data of every casualty survives even when the retry succeeds.
    """
    blackbox_dir = Path(blackbox_dir)
    spools = sorted(spool_dir_for(blackbox_dir).glob(
        f"{label}.attempt*.json"
    ))
    promoted: list[Path] = []
    for spool in spools:
        try:
            document = json.loads(spool.read_text())
            attempt = int(document.get("attempt", 1))
        except (OSError, json.JSONDecodeError, ValueError):
            spool.unlink(missing_ok=True)
            continue
        is_final = final_attempt is not None and attempt >= final_attempt
        if terminal_reason is None and is_final:
            spool.unlink(missing_ok=True)  # the clean, surviving attempt
            continue
        document["reason"] = (
            terminal_reason if terminal_reason is not None and is_final
            else "crash"
        )
        if terminal_reason is not None and final_attempt is None:
            document["reason"] = terminal_reason
        promoted.append(_write_artifact(blackbox_dir, document))
        spool.unlink(missing_ok=True)
    return promoted


def write_stub_artifact(blackbox_dir: str | Path, experiment: str,
                        seed: int, attempt: int, reason: str) -> Path:
    """An artifact for a seed that died before producing flight data.

    A terminal seed must always be inspectable — a worker crashed at
    start-up leaves no spool, so the parent records an empty-vehicles
    artifact documenting that the casualty predates any flight.
    """
    return _write_artifact(Path(blackbox_dir), {
        "schema": BLACKBOX_SCHEMA_VERSION,
        "experiment": experiment,
        "seed": int(seed),
        "attempt": int(attempt),
        "reason": reason,
        "created_at": time.time(),
        "alarms": {},
        "vehicles": [],
    })


# --------------------------------------------------------------------- #
# obs blackbox (summarize / export)
# --------------------------------------------------------------------- #
def load_blackbox(path: str | Path) -> dict[str, Any]:
    """Parse one artifact (or spool) file, with a schema sanity check."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise AnalysisError(f"cannot read blackbox artifact: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(
            f"'{path}' is not a blackbox artifact: {exc}"
        ) from exc
    if not isinstance(document, dict) or \
            document.get("schema") != BLACKBOX_SCHEMA_VERSION or \
            "vehicles" not in document:
        raise AnalysisError(f"'{path}' is not a blackbox artifact")
    return document


def summarize_blackbox(path: str | Path, last: int | None = None) -> str:
    """Human-readable per-vehicle summary of one artifact."""
    document = load_blackbox(path)
    lines = [
        f"Blackbox {path} — experiment '{document.get('experiment', '')}' "
        f"seed {document.get('seed')} attempt {document.get('attempt')} "
        f"reason {document.get('reason')}",
    ]
    alarms = document.get("alarms") or {}
    for key in sorted(alarms):
        lines.append(f"  alarm {key} = {alarms[key]:g}")
    vehicles = document.get("vehicles", [])
    if not vehicles:
        lines.append("  (no flight data: the seed died before any "
                     "vehicle stepped)")
        return "\n".join(lines)
    for vehicle in vehicles:
        frames = vehicle.get("frames", [])
        if last is not None:
            frames = frames[-last:]
        head = (
            f"  {vehicle.get('label', '?')} (seed {vehicle.get('seed')}): "
            f"{len(frames)} of {vehicle.get('steps_seen', 0)} steps buffered"
        )
        if vehicle.get("faults"):
            head += f", faults: {vehicle['faults']}"
        lines.append(head)
        if not frames:
            continue
        first, final = frames[0], frames[-1]
        alt = -float(final["pos"][2])
        speed = math.sqrt(sum(float(v) ** 2 for v in final["vel"]))
        lines.append(
            f"    t {first['t']:.2f}s → {final['t']:.2f}s, final alt "
            f"{alt:.1f} m, speed {speed:.1f} m/s, mode "
            f"{final.get('mode')}, armed={final.get('armed')}, "
            f"crashed={final.get('crashed')}"
        )
    return "\n".join(lines)


def export_blackbox(path: str | Path, out: str | Path,
                    last: int | None = None) -> Path:
    """Write a copy of the artifact trimmed to the last ``last`` frames."""
    document = load_blackbox(path)
    if last is not None:
        for vehicle in document.get("vehicles", []):
            vehicle["frames"] = vehicle.get("frames", [])[-last:]
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return out
