"""Opt-in per-stage hot-loop profiler.

The obs layer is strictly passive: with no profiler installed the
engines pay one module-attribute check per control cycle and results are
bit-identical. Installing a profiler (``with hot_loop_profile() as p:``)
only accumulates wall-clock (``time.perf_counter``) per named stage — it
never touches simulation state, RNG streams or results, so a profiled
run still matches the differential oracle bit for bit.

Stages and attribution
----------------------
Both engines report the same five stages so their breakdowns are
directly comparable:

``sensors``
    Sensor sampling. On the vectorized engine the RNG draws stay per
    lane while the post-draw arithmetic is batched (kind ``mixed``).
``estimation``
    EKF predict/update, SINS and AHRS (``batched`` on the fleet).
``mission``
    Per-lane firmware logic: failsafes, mode/mission bookkeeping and
    hooks (always ``scalar``).
``control``
    Navigation plus the position/attitude/mixer cascade (``mixed`` on
    the fleet: navigation is per lane, the cascade is batched).
``physics``
    Plant integration (``batched`` on the fleet).

The ``kind`` tag records batched-vs-scalar attribution so the
``BENCH_*.json`` trajectory tracks *where* the remaining serial
fraction lives, not just the headline multiplier.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "BATCHED",
    "SCALAR",
    "MIXED",
    "HotLoopProfile",
    "active_profile",
    "hot_loop_profile",
]

#: Stage attribution tags.
BATCHED = "batched"
SCALAR = "scalar"
MIXED = "mixed"

_ACTIVE: "HotLoopProfile | None" = None


class HotLoopProfile:
    """Accumulated wall-clock per hot-loop stage."""

    __slots__ = ("seconds", "calls", "kinds")

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.kinds: dict[str, str] = {}

    def add(self, stage: str, seconds: float, kind: str = SCALAR) -> None:
        """Accumulate ``seconds`` of wall-clock under ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        self.calls[stage] = self.calls.get(stage, 0) + 1
        self.kinds[stage] = kind

    @property
    def total_seconds(self) -> float:
        """Wall-clock across every stage."""
        return sum(self.seconds.values())

    def stages(self) -> dict[str, dict]:
        """Per-stage breakdown in the ``BENCH_*.json`` ``stages`` shape."""
        return {
            name: {
                "wall_s": self.seconds[name],
                "calls": self.calls[name],
                "kind": self.kinds[name],
            }
            for name in sorted(self.seconds)
        }


def active_profile() -> HotLoopProfile | None:
    """The installed profiler, or ``None`` (the default, zero-cost path)."""
    return _ACTIVE


@contextmanager
def hot_loop_profile():
    """Install a fresh :class:`HotLoopProfile` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    profile = HotLoopProfile()
    _ACTIVE = profile
    try:
        yield profile
    finally:
        _ACTIVE = previous
