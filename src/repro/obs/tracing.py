"""Span tracing with JSONL and Chrome-trace-event export.

``tracer.span("phase", **attrs)`` is a context manager recording a named,
timed span. Spans carry wall-clock start times (``time.time``) with
``perf_counter`` durations, so spans recorded in campaign worker
processes line up with the parent's on one timeline and render as
separate process lanes in ``chrome://tracing`` / Perfetto.

The tracer is strictly passive: a disabled tracer (the default) returns a
shared no-op context manager — the cost of an instrumented call site is
one attribute check. Enabling tracing only accumulates spans in memory;
nothing touches disk until :meth:`Tracer.export_chrome` /
:meth:`Tracer.export_jsonl` is called, and no simulation RNG or result
path ever reads tracing state, so enabling it cannot perturb any
cached or golden result.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
    "use_telemetry",
]

#: Bump when the span JSONL layout changes (checked by the JSON schema).
TRACE_SCHEMA_VERSION = 1


class Span:
    """One finished (or in-flight) span."""

    __slots__ = ("name", "start_unix", "duration_s", "attrs", "pid", "tid")

    def __init__(self, name: str, start_unix: float, duration_s: float,
                 attrs: dict[str, Any], pid: int, tid: int) -> None:
        self.name = name
        self.start_unix = start_unix
        self.duration_s = duration_s
        self.attrs = attrs
        self.pid = pid
        self.tid = tid

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the live span."""
        self.attrs[key] = value

    def to_dict(self) -> dict[str, Any]:
        """JSONL record form."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> Span:
        """Inverse of :meth:`to_dict` (used to adopt worker spans)."""
        return cls(
            name=str(record["name"]),
            start_unix=float(record["start_unix"]),
            duration_s=float(record["duration_s"]),
            attrs=dict(record.get("attrs", {})),
            pid=int(record.get("pid", 0)),
            tid=int(record.get("tid", 0)),
        )


class _NullSpan:
    """Shared no-op context manager handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        """Discard the attribute (disabled tracer)."""


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager measuring one span and handing it to the tracer."""

    __slots__ = ("_tracer", "_span", "_start_pc")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self._span = Span(
            name=name, start_unix=time.time(), duration_s=0.0, attrs=attrs,
            pid=os.getpid(), tid=threading.get_ident() & 0xFFFF,
        )
        self._start_pc = 0.0

    def __enter__(self) -> Span:
        self._start_pc = time.perf_counter()
        return self._span

    def __exit__(self, exc_type: Any, *exc_info: Any) -> bool:
        self._span.duration_s = time.perf_counter() - self._start_pc
        if exc_type is not None:
            self._span.attrs["error"] = exc_type.__name__
        self._tracer.record(self._span)
        return False


class Tracer:
    """Collects spans in memory; export on demand.

    Parameters
    ----------
    enabled:
        When False (the default for the process-global tracer),
        :meth:`span` returns a shared no-op context manager.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: list[Span] = []

    def span(self, name: str, **attrs: Any):
        """Context manager timing one named phase.

        The ``with`` target is the live :class:`Span`; call ``.set()`` on
        it to attach outputs discovered mid-phase (e.g. column counts).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def record(self, span: Span) -> None:
        """Append one finished span."""
        self.spans.append(span)

    def adopt(self, records: list[dict[str, Any]]) -> None:
        """Merge spans shipped back from a worker process (dict form)."""
        if not self.enabled:
            return
        for record in records:
            self.spans.append(Span.from_dict(record))

    def clear(self) -> None:
        """Drop all recorded spans."""
        self.spans = []

    def to_dicts(self) -> list[dict[str, Any]]:
        """All spans in JSONL record form (picklable/JSON-able)."""
        return [span.to_dict() for span in self.spans]

    # -- exporters ----------------------------------------------------- #
    def export_jsonl(self, path: str | Path) -> Path:
        """One JSON object per line; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Chrome trace-event JSON, loadable in chrome://tracing / Perfetto.

        Spans become complete ("ph": "X") events with microsecond
        timestamps relative to the earliest span, one lane per
        process/thread, so parallel campaign workers show up side by side.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        epoch = min((s.start_unix for s in self.spans), default=0.0)
        events: list[dict[str, Any]] = []
        for pid in sorted({s.pid for s in self.spans}):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            })
        for span in self.spans:
            events.append({
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start_unix - epoch) * 1e6,
                "dur": max(span.duration_s, 0.0) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": span.attrs,
            })
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        path.write_text(json.dumps(payload, sort_keys=True))
        return path

    def export(self, path: str | Path) -> Path:
        """Export by extension: ``.jsonl`` → JSONL, anything else → Chrome."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return self.export_jsonl(path)
        return self.export_chrome(path)


#: The process-global tracer (disabled until a sink is configured).
_default_tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The current default tracer."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process default; returns the previous one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


def span(name: str, **attrs: Any):
    """Convenience: a span on the process-global tracer."""
    return _default_tracer.span(name, **attrs)


@contextmanager
def use_telemetry(registry: MetricsRegistry | None = None,
                  tracer: Tracer | None = None):
    """Temporarily install a registry/tracer pair as the process defaults.

    Campaign workers run each seed under a fresh pair so per-seed
    metrics/spans can be snapshotted and shipped back to the parent;
    tests use it to isolate instrumented runs from the ambient registry.
    Yields ``(registry, tracer)`` (the installed, possibly ambient, pair).
    """
    prev_registry = prev_tracer = None
    if registry is not None:
        prev_registry = set_registry(registry)
    if tracer is not None:
        prev_tracer = set_tracer(tracer)
    try:
        yield (registry or get_registry(), tracer or get_tracer())
    finally:
        if registry is not None and prev_registry is not None:
            set_registry(prev_registry)
        if tracer is not None and prev_tracer is not None:
            set_tracer(prev_tracer)
