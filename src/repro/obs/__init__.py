"""Telemetry: metrics registry, span tracing and structured logging.

The observability layer the scaled pipeline is measured through
(MAVFI-style instrumented telemetry along the control pipeline,
arXiv:2105.12882). Three strictly passive facilities:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in a process
  -global (or injected) :class:`MetricsRegistry`; snapshots are JSON and
  merge across processes.
* :mod:`repro.obs.tracing` — ``span("phase", **attrs)`` context managers
  collected by a :class:`Tracer`, exported as span JSONL or Chrome
  trace-event JSON (chrome://tracing / Perfetto).
* :mod:`repro.obs.log` — stdlib logging with a JSON formatter carrying
  run-id/experiment/seed context.
* :mod:`repro.obs.profile` — opt-in per-stage hot-loop profiler
  (sensors/estimation/mission/control/physics wall-clock with
  batched-vs-scalar attribution) feeding the ``BENCH_*.json``
  trajectory.
* :mod:`repro.obs.events` — live campaign event bus: structured
  progress events (seed lifecycle, chunk dispatch, heartbeats) into a
  schema-validated JSONL log, an opt-in progress line with ETA, and
  ``obs tail`` to follow a running campaign.
* :mod:`repro.obs.blackbox` — crash-surviving flight recorder: a ring
  of recent per-vehicle state spooled to disk and promoted into
  content-addressed artifacts for every seed that ends in
  crash/timeout/failed/corrupt (``obs blackbox`` to inspect).

"Strictly passive" is a hard contract: with no sinks configured the
per-event cost is an attribute check (tracing) or one float add
(metrics), no file is ever written implicitly, and no simulation,
analysis or RL code path reads telemetry state — so enabling telemetry
cannot change any cached or golden result.
"""

from repro.obs.blackbox import (
    BlackboxRecorder,
    BlackboxSession,
    active_blackbox,
    blackbox_session,
    export_blackbox,
    load_blackbox,
    summarize_blackbox,
)
from repro.obs.events import (
    EventBus,
    format_event,
    queue_event,
    tail_events,
)
from repro.obs.log import (
    JsonFormatter,
    configure_logging,
    current_context,
    get_logger,
    log_context,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.profile import (
    HotLoopProfile,
    active_profile,
    hot_loop_profile,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_telemetry,
)

__all__ = [
    "BlackboxRecorder",
    "BlackboxSession",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "HotLoopProfile",
    "JsonFormatter",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_blackbox",
    "active_profile",
    "blackbox_session",
    "configure_logging",
    "current_context",
    "export_blackbox",
    "format_event",
    "get_logger",
    "get_registry",
    "get_tracer",
    "hot_loop_profile",
    "load_blackbox",
    "log_context",
    "queue_event",
    "set_registry",
    "set_tracer",
    "span",
    "summarize_blackbox",
    "tail_events",
    "use_telemetry",
]
