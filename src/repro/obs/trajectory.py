"""Performance-trajectory snapshots: the ``BENCH_<date>.json`` series.

Each snapshot records the wall-clock time of named bench suites plus the
obs counter deltas observed while they ran (sim steps, cache activity,
...), so performance changes land as reviewable diffs instead of
anecdotes. The files form a *trajectory*: sorted by date, the newest two
are compared with a relative tolerance band — a suite that got more than
``tolerance`` slower than the previous snapshot is a regression.

The comparison is deliberately robust to the bootstrap case: an empty
directory (no snapshot yet — the state before this module existed) or a
single first snapshot compares clean, so the first CI run that writes
``BENCH_*.json`` passes and later runs have a baseline.

Snapshots are written by ``benchmarks/trajectory.py`` and validate
against ``schemas/bench_trajectory.schema.json`` (``python -m repro obs
validate BENCH_2026-08-09.json schemas/bench_trajectory.schema.json``).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import AnalysisError

__all__ = [
    "SNAPSHOT_PREFIX",
    "SNAPSHOT_SCHEMA_VERSION",
    "SuiteComparison",
    "TrajectoryComparison",
    "compare_snapshots",
    "latest_snapshots",
    "load_trajectory",
    "snapshot_path",
    "write_snapshot",
]

#: Snapshot files are ``BENCH_<YYYY-MM-DD>.json`` in the repo root.
SNAPSHOT_PREFIX = "BENCH_"

#: Bump when the snapshot layout changes (checked by the schema).
#: v2 added the optional per-suite ``stages`` breakdown; v1 snapshots
#: remain loadable and comparable (the schema accepts both versions).
SNAPSHOT_SCHEMA_VERSION = 2

#: Stage attribution tags the schema accepts (mirrors repro.obs.profile).
_STAGE_KINDS = ("batched", "scalar", "mixed")


def snapshot_path(directory: str | Path, date: str | None = None) -> Path:
    """The snapshot file path for ``date`` (default: today, local time)."""
    date = date or time.strftime("%Y-%m-%d")
    return Path(directory) / f"{SNAPSHOT_PREFIX}{date}.json"


def write_snapshot(
    directory: str | Path,
    suites: dict[str, dict[str, float]],
    counters: dict[str, float] | None = None,
    extras: dict[str, float] | None = None,
    label: str = "",
    date: str | None = None,
) -> Path:
    """Write one ``BENCH_<date>.json`` snapshot and return its path.

    ``suites`` maps suite name -> ``{"wall_s": seconds, ...}`` (extra
    numeric fields are allowed and preserved); ``counters`` holds the obs
    counter deltas observed while the suites ran; ``extras`` holds
    derived scalars such as ``speedup_n16``. A suite may carry a nested
    ``"stages"`` breakdown — the
    :meth:`repro.obs.profile.HotLoopProfile.stages` shape, mapping stage
    name to ``{"wall_s": s, "calls": c, "kind": tag}`` — which is
    preserved verbatim (kinds validated against the profiler's tags).
    """
    for name, timing in suites.items():
        if "wall_s" not in timing:
            raise AnalysisError(f"suite '{name}' is missing 'wall_s'")
        if float(timing["wall_s"]) < 0.0:
            raise AnalysisError(f"suite '{name}' has negative wall_s")
    path = snapshot_path(directory, date)
    document = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "date": path.stem[len(SNAPSHOT_PREFIX):],
        "label": label,
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "suites": {
            name: _coerce_suite(name, timing)
            for name, timing in sorted(suites.items())
        },
        "counters": {
            key: float(value)
            for key, value in sorted((counters or {}).items())
        },
        "extras": {
            key: float(value) for key, value in sorted((extras or {}).items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    return path


def _coerce_suite(name: str, timing: dict) -> dict:
    """One suite's JSON form: floats, plus an optional ``stages`` tree."""
    out: dict = {}
    for key, value in timing.items():
        if key == "stages":
            out["stages"] = {
                stage: _coerce_stage(name, stage, info)
                for stage, info in sorted(value.items())
            }
        else:
            out[key] = float(value)
    return out


def _coerce_stage(suite: str, stage: str, info: dict) -> dict:
    where = f"suite '{suite}' stage '{stage}'"
    for required in ("wall_s", "calls", "kind"):
        if required not in info:
            raise AnalysisError(f"{where} is missing '{required}'")
    if float(info["wall_s"]) < 0.0:
        raise AnalysisError(f"{where} has negative wall_s")
    kind = str(info["kind"])
    if kind not in _STAGE_KINDS:
        raise AnalysisError(
            f"{where} has unknown kind '{kind}' "
            f"(expected one of {', '.join(_STAGE_KINDS)})"
        )
    return {
        "wall_s": float(info["wall_s"]),
        "calls": float(info["calls"]),
        "kind": kind,
    }


def _numpy_version() -> str:
    import numpy

    return str(numpy.__version__)


def load_trajectory(directory: str | Path) -> list[tuple[Path, dict]]:
    """All snapshots under ``directory``, oldest first.

    Returns an empty list when the directory is missing or holds no
    ``BENCH_*.json`` files (the bootstrap case); unparseable files raise.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    trajectory: list[tuple[Path, dict]] = []
    for path in sorted(directory.glob(f"{SNAPSHOT_PREFIX}*.json")):
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise AnalysisError(
                f"corrupt bench snapshot '{path}': {exc}"
            ) from exc
        trajectory.append((path, document))
    return trajectory


def latest_snapshots(
    directory: str | Path,
) -> tuple[dict | None, dict | None]:
    """The newest snapshot and its predecessor (either may be ``None``)."""
    trajectory = load_trajectory(directory)
    current = trajectory[-1][1] if trajectory else None
    previous = trajectory[-2][1] if len(trajectory) > 1 else None
    return current, previous


@dataclass
class SuiteComparison:
    """One suite's timing against the previous snapshot."""

    name: str
    current_s: float
    previous_s: float | None
    #: The tolerance band applied to this suite (the global band unless a
    #: per-suite override was given).
    tolerance: float = 0.25

    @property
    def slowdown(self) -> float | None:
        """Relative slowdown vs the previous snapshot (0.1 = 10% slower);
        ``None`` when there is no comparable previous timing."""
        if self.previous_s is None or self.previous_s <= 0.0:
            return None
        return self.current_s / self.previous_s - 1.0

    @property
    def regressed(self) -> bool:
        return self.slowdown is not None and self.slowdown > self.tolerance


@dataclass
class TrajectoryComparison:
    """Comparison of the newest snapshot against the previous one."""

    tolerance: float
    suites: list[SuiteComparison] = field(default_factory=list)
    #: True when there was no previous snapshot to compare against.
    bootstrap: bool = False

    @property
    def regressions(self) -> list[SuiteComparison]:
        """Suites slower than their tolerance band allows."""
        return [suite for suite in self.suites if suite.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable comparison report."""
        if self.bootstrap:
            return (
                "bench trajectory: no previous snapshot — baseline "
                "established, nothing to compare"
            )
        lines = [
            f"bench trajectory (tolerance {self.tolerance:+.0%} wall-clock):"
        ]
        for suite in self.suites:
            if suite.slowdown is None:
                lines.append(f"  {suite.name:32s} {suite.current_s:8.3f}s  (new suite)")
                continue
            verdict = "REGRESSION" if suite.regressed else "ok"
            band = (
                f"  [band {suite.tolerance:+.0%}]"
                if suite.tolerance != self.tolerance else ""
            )
            lines.append(
                f"  {suite.name:32s} {suite.current_s:8.3f}s  "
                f"prev {suite.previous_s:8.3f}s  {suite.slowdown:+7.1%}  "
                f"{verdict}{band}"
            )
        return "\n".join(lines)


def compare_snapshots(
    current: dict | None,
    previous: dict | None,
    tolerance: float = 0.25,
    suite_tolerances: dict[str, float] | None = None,
) -> TrajectoryComparison:
    """Compare two snapshots within a relative ``tolerance`` band.

    A missing ``previous`` (first snapshot, or an empty trajectory) is
    the bootstrap case and passes; a suite present only in ``current``
    is new and cannot regress; a suite that vanished is ignored — only
    suites measured in both snapshots can fail the band.

    ``suite_tolerances`` overrides the band per suite name — a noisy
    suite (a tiny fleet width dominated by fixed overhead, say) can run
    with a looser band while the headline suites keep the tight default.
    An override naming a suite absent from both snapshots is an error:
    it would silently gate nothing.
    """
    if tolerance < 0.0:
        raise AnalysisError(f"tolerance must be >= 0 (got {tolerance})")
    overrides = dict(suite_tolerances or {})
    for name, band in overrides.items():
        if band < 0.0:
            raise AnalysisError(
                f"tolerance for suite '{name}' must be >= 0 (got {band})"
            )
    comparison = TrajectoryComparison(tolerance=tolerance)
    if current is None or previous is None:
        comparison.bootstrap = True
        return comparison
    previous_suites = previous.get("suites", {})
    current_suites = current.get("suites", {})
    unknown = set(overrides) - set(current_suites) - set(previous_suites)
    if unknown:
        raise AnalysisError(
            "per-suite tolerance for unknown suite(s): "
            + ", ".join(sorted(unknown))
        )
    for name, timing in sorted(current_suites.items()):
        before = previous_suites.get(name)
        comparison.suites.append(SuiteComparison(
            name=name,
            current_s=float(timing["wall_s"]),
            previous_s=(
                float(before["wall_s"]) if before is not None else None
            ),
            tolerance=overrides.get(name, tolerance),
        ))
    return comparison
