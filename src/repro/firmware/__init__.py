"""Virtual ArduCopter firmware: parameters, modes, missions, logging, vehicle."""

from repro.firmware.log_defs import (
    LOG_MESSAGE_DEFS,
    LogMessageDef,
    TABLE1_ALV_COUNTS,
    total_alv_count,
)
from repro.firmware.log_io import decode_log, encode_log, load_log, save_log
from repro.firmware.logger import DataflashLogger
from repro.firmware.mission import (
    Mission,
    MissionStatus,
    Waypoint,
    line_mission,
    square_mission,
)
from repro.firmware.modes import FlightMode, ModeManager
from repro.firmware.param_defs import CONTROL_PARAMETER_NAMES, arducopter_parameter_defs
from repro.firmware.parameters import ParameterDef, ParameterStore
from repro.firmware.vehicle import NAV_REGION, STABILIZER_REGION, Vehicle

__all__ = [
    "CONTROL_PARAMETER_NAMES",
    "DataflashLogger",
    "FlightMode",
    "LOG_MESSAGE_DEFS",
    "LogMessageDef",
    "Mission",
    "MissionStatus",
    "ModeManager",
    "NAV_REGION",
    "ParameterDef",
    "ParameterStore",
    "STABILIZER_REGION",
    "TABLE1_ALV_COUNTS",
    "Vehicle",
    "Waypoint",
    "arducopter_parameter_defs",
    "decode_log",
    "encode_log",
    "line_mission",
    "load_log",
    "save_log",
    "square_mission",
    "total_alv_count",
]
