"""Dataflash log message schema — the paper's Table I.

The ArduCopter built-in dataflash logger exposes 40 message types totalling
342 available log variables (ALVs); that inventory is the paper's *known
state variable list* (KSVL). Field counts here match Table I exactly; field
names follow ArduPilot's conventions plus the paper's Fig. 3/Fig. 5 labels
(``DesR``, ``IR``, ``IRErr``, ``tv``, ``dPD`` ...).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LogMessageDef",
    "LOG_MESSAGE_DEFS",
    "TABLE1_ALV_COUNTS",
    "total_alv_count",
]


@dataclass(frozen=True)
class LogMessageDef:
    """Schema of one dataflash message type."""

    name: str
    fields: tuple[str, ...]
    description: str = ""

    @property
    def num_fields(self) -> int:
        """Number of available log variables in this message."""
        return len(self.fields)


def _msg(name: str, fields: list[str], description: str = "") -> LogMessageDef:
    return LogMessageDef(name=name, fields=tuple(fields), description=description)


#: The 40 message types of the ArduCopter dataflash logger (Table I).
LOG_MESSAGE_DEFS: dict[str, LogMessageDef] = {
    d.name: d
    for d in [
        _msg("AHR2", ["TimeUS", "Roll", "Pitch", "Yaw", "Alt", "Lat", "Lng"],
             "Backup AHRS solution"),
        _msg("ATT", ["TimeUS", "DesR", "R", "DesP", "P", "DesY", "Y",
                     "IR", "IRErr", "tv", "ErrRP", "ErrYaw"],
             "Attitude: desired vs achieved angles, roll rate (IR), roll "
             "rate error (IRErr) and throttle value (tv)"),
        _msg("BARO", ["TimeUS", "Alt", "Press", "Temp", "CRt"],
             "Barometer"),
        _msg("CMD", ["TimeUS", "CNum", "CId", "Lat", "Lng", "Alt"],
             "Executed mission command"),
        _msg("CTUN", ["TimeUS", "ThI", "ThO", "DAlt", "Alt", "CRt"],
             "Throttle/altitude tuning"),
        _msg("CURR", ["TimeUS", "Volt", "Curr", "CurrTot", "EnrgTot", "Temp", "Res"],
             "Battery monitor"),
        _msg("DU32", ["TimeUS", "Id", "Value"],
             "Generic 32-bit debug value"),
        _msg("EKF1", ["TimeUS", "Roll", "Pitch", "Yaw", "VN", "VE", "VD",
                      "dPD", "PN", "PE", "PD", "GX", "GY", "GZ"],
             "EKF primary solution: attitude, velocity, position, gyro bias"),
        _msg("EKF2", ["TimeUS", "AX", "AY", "AZ", "VWN", "VWE",
                      "MN", "ME", "MD", "MX", "MY", "MZ"],
             "EKF accel bias, wind and magnetic field states"),
        _msg("EKF3", ["TimeUS", "IVN", "IVE", "IVD", "IPN", "IPE", "IPD",
                      "IMX", "IMY", "IMZ", "IYAW"],
             "EKF innovations"),
        _msg("EKF4", ["TimeUS", "SV", "SP", "SH", "SM", "SVT", "errRP",
                      "OFN", "OFE", "FS", "TS", "SS", "GPS", "PI"],
             "EKF variance ratios and fault status"),
        _msg("EV", ["TimeUS", "Id"], "Flight event"),
        _msg("FMT", ["Type", "Length", "Name", "Format", "Columns", "TimeUS"],
             "Message format descriptor"),
        _msg("GPA", ["TimeUS", "VDop", "HAcc", "VAcc", "SAcc"],
             "GPS accuracy"),
        _msg("GPS", ["TimeUS", "Status", "GMS", "GWk", "NSats", "HDop",
                     "Lat", "Lng", "Alt", "Spd", "GCrs", "VZ", "U", "SMS"],
             "GPS fix"),
        _msg("IMU", ["TimeUS", "GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ",
                     "EG", "EA", "T", "GH", "AH"],
             "Primary IMU"),
        _msg("IMU2", ["TimeUS", "GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ",
                      "EG", "EA", "T", "GH", "AH"],
             "Secondary IMU"),
        _msg("MAG", ["TimeUS", "MagX", "MagY", "MagZ", "OfsX", "OfsY", "OfsZ",
                     "MOX", "MOY", "MOZ", "Health"],
             "Primary compass"),
        _msg("MAG2", ["TimeUS", "MagX", "MagY", "MagZ", "OfsX", "OfsY", "OfsZ",
                      "MOX", "MOY", "MOZ", "Health"],
             "Secondary compass"),
        _msg("MAV", ["TimeUS", "Chan"], "MAVLink channel statistics"),
        _msg("MODE", ["TimeUS", "Mode", "Reason"], "Flight mode change"),
        _msg("MOTB", ["TimeUS", "LiftMax", "BatVolt", "BatRes", "ThLimit"],
             "Motor battery compensation"),
        _msg("MSG", ["Message"], "Text message"),
        _msg("NKF1", ["TimeUS", "Roll", "Pitch", "Yaw", "VN", "VE", "VD",
                      "dPD", "PN", "PE", "PD", "GX", "GY", "GZ"],
             "NavEKF2 primary solution"),
        _msg("NKF2", ["TimeUS", "AZbias", "GSX", "GSY", "GSZ", "VWN", "VWE",
                      "MN", "ME", "MD", "MX", "MY", "MZ"],
             "NavEKF2 bias/wind/mag states"),
        _msg("NKF3", ["TimeUS", "IVN", "IVE", "IVD", "IPN", "IPE", "IPD",
                      "IMX", "IMY", "IMZ", "IYAW", "IVT"],
             "NavEKF2 innovations"),
        _msg("NKF4", ["TimeUS", "SV", "SP", "SH", "SM", "SVT", "errRP",
                      "OFN", "OFE", "FS", "TS", "SS", "GPS"],
             "NavEKF2 variances"),
        _msg("NTUN", ["TimeUS", "DPosX", "DPosY", "PosX", "PosY",
                      "DVelX", "DVelY", "VelX", "VelY", "DAccX", "DAccY"],
             "Navigation tuning (position controller)"),
        _msg("PARM", ["TimeUS", "Name", "Value"], "Parameter value"),
        _msg("PIDA", ["TimeUS", "Des", "Act", "P", "I", "D", "FF"],
             "Vertical acceleration PID"),
        _msg("PIDR", ["TimeUS", "Des", "Act", "P", "I", "D", "FF"],
             "Roll rate PID"),
        _msg("PIDY", ["TimeUS", "Des", "Act", "P", "I", "D", "FF"],
             "Yaw rate PID"),
        _msg("PIDP", ["TimeUS", "Des", "Act", "P", "I", "D", "FF"],
             "Pitch rate PID"),
        _msg("PM", ["TimeUS", "NLon", "NLoop", "MaxT", "Mem", "Load", "ErrL"],
             "Scheduler performance"),
        _msg("POS", ["TimeUS", "Lat", "Lng", "Alt", "RelAlt"],
             "Canonical position"),
        _msg("RATE", ["TimeUS", "RDes", "R", "ROut", "PDes", "P", "POut",
                      "YDes", "Y", "YOut", "ADes", "A", "AOut"],
             "Rate controller targets and outputs"),
        _msg("RCIN", ["TimeUS"] + [f"C{i}" for i in range(1, 15)],
             "RC input channels"),
        _msg("RCOU", ["TimeUS"] + [f"C{i}" for i in range(1, 13)],
             "Servo/motor output channels"),
        _msg("SIM", ["TimeUS", "Roll", "Pitch", "Yaw", "Alt", "Lat", "Lng"],
             "Simulator ground truth"),
        _msg("VIBE", ["TimeUS", "VibeX", "VibeY", "VibeZ", "Clip0", "Clip1", "Clip2"],
             "IMU vibration metrics"),
    ]
}

#: Paper Table I: message name -> number of available log variables.
TABLE1_ALV_COUNTS: dict[str, int] = {
    "AHR2": 7, "ATT": 12, "BARO": 5, "CMD": 6, "CTUN": 6, "CURR": 7,
    "DU32": 3, "EKF1": 14, "EKF2": 12, "EKF3": 11, "EKF4": 14, "EV": 2,
    "FMT": 6, "GPA": 5, "GPS": 14, "IMU": 12, "IMU2": 12, "MAG": 11,
    "MAG2": 11, "MAV": 2, "MODE": 3, "MOTB": 5, "MSG": 1, "NKF1": 14,
    "NKF2": 13, "NKF3": 12, "NKF4": 13, "NTUN": 11, "PARM": 3, "PIDA": 7,
    "PIDR": 7, "PIDY": 7, "PIDP": 7, "PM": 7, "POS": 5, "RATE": 13,
    "RCIN": 15, "RCOU": 13, "SIM": 7, "VIBE": 7,
}


def total_alv_count() -> int:
    """Total available log variables across all message types (342)."""
    return sum(d.num_fields for d in LOG_MESSAGE_DEFS.values())
