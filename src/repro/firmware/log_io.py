"""Binary dataflash log encoding and decoding.

Real ArduPilot dataflash logs are binary ``.bin`` files: a stream of
self-describing records, each introduced by a two-byte magic header and a
message-type id, with ``FMT`` records describing the field layout of every
other message type. The paper's profiling step "downloads" such a log
after each mission; this module provides a faithful round-trippable
binary format so logs can be written to disk, shipped and re-parsed into
the same structures the analysis pipeline consumes.

Format (little-endian)::

    record  := 0xA3 0x95 <type:u8> <payload>
    FMT     := type 0x80, payload: described-type u8, name 16s,
               field-count u8, then field-count * (field-name 16s)
    data    := per the FMT of its type: f64 per field

Values are stored as float64 for fidelity with the in-memory logger (real
firmware packs narrower types; the paper's statistics do not depend on
quantisation).
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.exceptions import ReproError
from repro.firmware.log_defs import LOG_MESSAGE_DEFS
from repro.firmware.logger import DataflashLogger

__all__ = ["encode_log", "decode_log", "save_log", "load_log"]

_MAGIC = b"\xa3\x95"
_FMT_TYPE = 0x80


def _type_ids() -> dict[str, int]:
    """Stable message-name → type-id assignment (alphabetical)."""
    return {name: i for i, name in enumerate(sorted(LOG_MESSAGE_DEFS))}


def _pack_name(name: str) -> bytes:
    raw = name.encode("ascii")
    if len(raw) > 16:
        raise ReproError(f"name too long for dataflash format: '{name}'")
    return raw.ljust(16, b"\x00")


def _unpack_name(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("ascii")


def encode_log(logger: DataflashLogger) -> bytes:
    """Serialise a logger's contents into the binary dataflash format.

    Emits one FMT record per message type that has data, followed by all
    data records in per-type chronological order.
    """
    ids = _type_ids()
    chunks: list[bytes] = []
    for name in sorted(LOG_MESSAGE_DEFS):
        records = logger.records(name)
        if not records:
            continue
        definition = LOG_MESSAGE_DEFS[name]
        fmt_payload = struct.pack("<B", ids[name]) + _pack_name(name)
        fmt_payload += struct.pack("<B", definition.num_fields)
        for field in definition.fields:
            fmt_payload += _pack_name(field)
        chunks.append(_MAGIC + struct.pack("<B", _FMT_TYPE) + fmt_payload)
        for _, record in records:
            payload = struct.pack(
                f"<{definition.num_fields}d",
                *(record[field] for field in definition.fields),
            )
            chunks.append(_MAGIC + struct.pack("<B", ids[name]) + payload)
    return b"".join(chunks)


def decode_log(blob: bytes) -> dict[str, list[dict[str, float]]]:
    """Parse a binary dataflash blob back into per-type record lists.

    The decoder relies only on the embedded FMT records (it does not
    assume this library's schema), like a real log parser.
    """
    offset = 0
    formats: dict[int, tuple[str, list[str]]] = {}
    out: dict[str, list[dict[str, float]]] = {}
    n = len(blob)
    while offset < n:
        if blob[offset : offset + 2] != _MAGIC:
            raise ReproError(f"bad record magic at offset {offset}")
        offset += 2
        (type_id,) = struct.unpack_from("<B", blob, offset)
        offset += 1
        if type_id == _FMT_TYPE:
            (described,) = struct.unpack_from("<B", blob, offset)
            offset += 1
            name = _unpack_name(blob[offset : offset + 16])
            offset += 16
            (count,) = struct.unpack_from("<B", blob, offset)
            offset += 1
            fields = []
            for _ in range(count):
                fields.append(_unpack_name(blob[offset : offset + 16]))
                offset += 16
            formats[described] = (name, fields)
            out.setdefault(name, [])
        else:
            if type_id not in formats:
                raise ReproError(
                    f"data record for unknown type {type_id} before its FMT"
                )
            name, fields = formats[type_id]
            values = struct.unpack_from(f"<{len(fields)}d", blob, offset)
            offset += 8 * len(fields)
            out[name].append(dict(zip(fields, values)))
    return out


def save_log(logger: DataflashLogger, path: str | Path) -> int:
    """Write a logger's contents to ``path``; returns the byte count."""
    blob = encode_log(logger)
    Path(path).write_bytes(blob)
    return len(blob)


def load_log(path: str | Path) -> dict[str, list[dict[str, float]]]:
    """Read a binary dataflash file back into per-type record lists."""
    return decode_log(Path(path).read_bytes())
