"""The virtual ArduCopter: firmware main loop over the simulated plant.

``Vehicle`` wires together every substrate — physics, sensors, estimators,
the cascaded controllers, the parameter store, the dataflash logger, the
MPU memory map and the GCS link — into the 400 Hz loop ArduPilot's
scheduler runs. It exposes the hook points the ARES attack and defense
layers attach to.
"""

from __future__ import annotations

import math
import time as _time
from collections.abc import Callable

import numpy as np

from repro.control.attitude import AttitudeController, AttitudeTargets
from repro.control.cascade import ControllerRegistry
from repro.control.mixer import MotorMixer
from repro.control.position import PositionController, PositionSetpoint
from repro.estimation.complementary import ComplementaryFilter
from repro.estimation.ekf import AttitudePositionEKF
from repro.estimation.sins import StrapdownINS
from repro.exceptions import MissionError, ParameterRangeError
from repro.firmware.logger import DataflashLogger
from repro.firmware.mission import Mission, MissionStatus
from repro.firmware.modes import FlightMode, ModeManager
from repro.firmware.param_defs import arducopter_parameter_defs
from repro.firmware.parameters import ParameterStore
from repro.gcs.link import Link
from repro.gcs.messages import (
    CommandAck,
    MavResult,
    MissionUpload,
    ParamRequest,
    ParamSet,
    ParamValue,
    SetMode,
)
from repro.gcs.proxy import MavProxy
from repro.memory.attacker import CompromisedRegionView
from repro.memory.layout import AccessMode, MemoryLayout, MemoryRegion
from repro.memory.mpu import Mpu
from repro.obs.blackbox import active_blackbox
from repro.obs.metrics import get_registry
from repro.obs.profile import SCALAR, active_profile
from repro.obs.tracing import span as obs_span
from repro.sensors.suite import SensorSuite
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator
from repro.sim.world import World
from repro.utils.math3d import rad2deg

__all__ = ["Vehicle", "STABILIZER_REGION", "NAV_REGION"]

#: Region names of the default memory map.
STABILIZER_REGION = "SRAM_STABILIZER"
NAV_REGION = "SRAM_NAV"

#: Minimum interval (s) between EKF measurement updates, per sensor. Shared
#: with the vectorized engine so both paths schedule updates identically.
EKF_UPDATE_PERIODS = {"accel": 0.05, "mag": 0.1, "gps": 0.1, "baro": 0.05}

#: Takeoff completion thresholds (shared with the vectorized engine).
TAKEOFF_ALT_TOLERANCE = 0.25
TAKEOFF_VEL_TOLERANCE = 0.5
TAKEOFF_SUCCESS_TOLERANCE = 0.5


class Vehicle:
    """A complete virtual RAV running ArduCopter-style firmware.

    Parameters
    ----------
    config:
        Simulation configuration (airframe, rates, environment).
    world:
        Static scene (obstacles, forbidden zones).
    use_truth_state:
        When True the controllers are fed ground truth instead of the EKF
        estimate and the sensor/EKF pipeline still runs (for logging and
        detectors) but does not affect control. Used to speed up and
        stabilise RL training episodes.
    log_rate_hz:
        Dataflash decimation rate (paper: 16 Hz).
    fault_schedule:
        Optional :class:`repro.faults.FaultSchedule`. Injectors are built
        only for the fault families the schedule actually contains, and an
        empty (or None) schedule installs nothing at all — the pristine
        loop runs bit-identically to a vehicle built without the argument.
    """

    def __init__(
        self,
        config: SimConfig | None = None,
        world: World | None = None,
        use_truth_state: bool = False,
        log_rate_hz: float = 16.0,
        estimation_enabled: bool = True,
        fault_schedule=None,
    ):
        self.config = config or SimConfig()
        self.sim = Simulator(self.config, world)
        self.world = self.sim.world
        #: When estimation is disabled the sensor/EKF pipeline is skipped
        #: entirely (an RL-training speed knob); control must then use
        #: ground truth.
        self.estimation_enabled = estimation_enabled
        self.use_truth_state = use_truth_state or not estimation_enabled

        seed = self.config.seed
        self.sensors = SensorSuite(seed=seed)
        self.ekf = AttitudePositionEKF()
        self.sins = StrapdownINS(gravity=self.config.gravity)
        #: Independent backup AHRS (the AHR2 log source); the SAVIOR-style
        #: detector compares its attitude against the EKF's.
        self.ahrs = ComplementaryFilter()

        airframe = self.config.airframe
        self.attitude_ctrl = AttitudeController()
        self.position_ctrl = PositionController(hover_throttle=airframe.hover_throttle)
        self.mixer = MotorMixer(min_throttle=0.0, max_throttle=1.0)
        self.registry = ControllerRegistry(
            self.attitude_ctrl, self.position_ctrl, self.sins
        )

        self.params = ParameterStore()
        self.params.declare_all(arducopter_parameter_defs())
        self.params.subscribe(self._on_param_change)

        self.logger = DataflashLogger(log_rate_hz=log_rate_hz)
        self.modes = ModeManager(FlightMode.STABILIZE)
        self.mission: Mission | None = None
        self.link = Link()
        self._register_link_handlers()

        self.fault_schedule = fault_schedule
        if fault_schedule is not None and not fault_schedule.empty:
            self._install_faults(fault_schedule, seed)

        self.memory = MemoryLayout()
        self.mpu = Mpu(self.memory)
        self._build_memory_map()

        self.armed = False
        self.home = np.zeros(3)
        self._yaw_target = 0.0
        self._yaw_slew_rate = math.radians(60.0)
        self.guided_target: np.ndarray | None = None
        self.manual_targets = AttitudeTargets()
        self._last_setpoint = PositionSetpoint(position=np.zeros(3))

        # Hook points for attacks and detectors.
        self.pre_control_hooks: list[Callable[["Vehicle"], None]] = []
        self.target_hooks: list[
            Callable[["Vehicle", AttitudeTargets], AttitudeTargets]
        ] = []
        self.torque_hooks: list[
            Callable[["Vehicle", np.ndarray], np.ndarray]
        ] = []
        self.post_step_hooks: list[Callable[["Vehicle"], None]] = []

        # Telemetry instruments, resolved once for the 400 Hz loop.
        self._metric_cycles = get_registry().counter("vehicle.control_cycles")

        # Cached per-cycle values for logging and detector access.
        self.last_readings = None
        self.last_targets = AttitudeTargets()
        self.last_torque = np.zeros(3)
        self.last_motors = np.zeros(4)
        self._ekf_timers = {"gps": -np.inf, "baro": -np.inf, "mag": -np.inf,
                           "accel": -np.inf}

        # Blackbox flight recorder: the session check happens once, at
        # construction, so a disabled recorder costs zero per step.
        blackbox = active_blackbox()
        if blackbox is not None:
            blackbox.attach(self)

    # ------------------------------------------------------------------ #
    # Fault layer
    # ------------------------------------------------------------------ #
    def _install_faults(self, schedule, seed) -> None:
        """Attach per-family injectors for a non-empty fault schedule.

        Imported lazily and installed selectively so vehicles without
        faults never touch the fault layer.
        """
        from repro.faults import (
            ActuatorFaultInjector,
            ChannelFaultModel,
            SensorFaultInjector,
        )

        sensor_injector = SensorFaultInjector(schedule, seed=seed)
        if not sensor_injector.empty:
            self.sensors.fault_injector = sensor_injector
        actuator_injector = ActuatorFaultInjector(schedule, seed=seed)
        if not actuator_injector.empty:
            self.sim.actuator_faults = actuator_injector
        channel_model = ChannelFaultModel(
            schedule, seed=seed, steps_per_second=1.0 / self.sim.dt
        )
        if not channel_model.empty:
            self.link.channel_faults = channel_model

    # ------------------------------------------------------------------ #
    # Parameter wiring
    # ------------------------------------------------------------------ #
    def _on_param_change(self, name: str, value: float) -> None:
        """Propagate accepted parameter writes into the live controllers."""
        att = self.attitude_ctrl
        pids = {"RLL": att.pid_roll, "PIT": att.pid_pitch, "YAW": att.pid_yaw}
        if name.startswith("ATC_RAT_"):
            _, _, axis, gain = name.split("_", 3)
            pid = pids.get(axis)
            if pid is not None:
                attr = {"P": "kp", "I": "ki", "D": "kd",
                        "IMAX": "imax", "FLTD": "filt_hz"}.get(gain)
                if attr is not None:
                    setattr(pid.gains, attr, value)
        elif name == "ATC_ANG_RLL_P" or name == "ATC_ANG_PIT_P" or name == "ATC_ANG_YAW_P":
            att.angle_p = value
        elif name == "PSC_POSXY_P":
            self.position_ctrl.axis_x.pos_ctrl.p = value
            self.position_ctrl.axis_y.pos_ctrl.p = value
        elif name == "PSC_VELXY_P":
            self.position_ctrl.axis_x.vel_ctrl.gains.kp = value
            self.position_ctrl.axis_y.vel_ctrl.gains.kp = value
        elif name == "PSC_VELXY_I":
            self.position_ctrl.axis_x.vel_ctrl.gains.ki = value
            self.position_ctrl.axis_y.vel_ctrl.gains.ki = value
        elif name == "PSC_VELXY_D":
            self.position_ctrl.axis_x.vel_ctrl.gains.kd = value
            self.position_ctrl.axis_y.vel_ctrl.gains.kd = value
        elif name == "PSC_POSZ_P":
            self.position_ctrl.axis_z.pos_ctrl.p = value
        elif name == "PSC_VELZ_P":
            self.position_ctrl.axis_z.vel_ctrl.gains.kp = value
        elif name == "PSC_VELZ_I":
            self.position_ctrl.axis_z.vel_ctrl.gains.ki = value
        elif name == "ANGLE_MAX":
            self.position_ctrl.lean_angle_max = math.radians(value)
        elif name == "WPNAV_RADIUS" and self.mission is not None:
            self.mission.acceptance_radius = value

    # ------------------------------------------------------------------ #
    # GCS link
    # ------------------------------------------------------------------ #
    def _register_link_handlers(self) -> None:
        self.link.register_handler(ParamRequest, self._handle_param_request)
        self.link.register_handler(ParamSet, self._handle_param_set)
        self.link.register_handler(MissionUpload, self._handle_mission_upload)
        self.link.register_handler(SetMode, self._handle_set_mode)

    def _handle_param_request(self, msg: ParamRequest) -> ParamValue:
        try:
            return ParamValue(name=msg.name, value=self.params.get(msg.name))
        except Exception as exc:  # unknown parameter
            return ParamValue(name=msg.name, ok=False, error=str(exc))

    def _handle_param_set(self, msg: ParamSet) -> ParamValue:
        try:
            value = self.params.set(msg.name, msg.value)
            return ParamValue(name=msg.name, value=value)
        except ParameterRangeError as exc:
            return ParamValue(name=msg.name, ok=False, error=str(exc))
        except Exception as exc:
            return ParamValue(name=msg.name, ok=False, error=str(exc))

    def _handle_mission_upload(self, msg: MissionUpload) -> CommandAck:
        try:
            from repro.firmware.mission import Waypoint

            waypoints = [
                Waypoint(item.north, item.east, item.altitude, item.hold_s)
                for item in msg.items
            ]
            self.mission = Mission(
                waypoints=waypoints,
                acceptance_radius=self.params.get("WPNAV_RADIUS"),
            )
            return CommandAck(command="MISSION_UPLOAD", result=MavResult.ACCEPTED)
        except MissionError as exc:
            return CommandAck(
                command="MISSION_UPLOAD", result=MavResult.DENIED, detail=str(exc)
            )

    def _handle_set_mode(self, msg: SetMode) -> CommandAck:
        try:
            mode = FlightMode(msg.mode_number)
            self.set_mode(mode)
            return CommandAck(command="SET_MODE", result=MavResult.ACCEPTED)
        except (ValueError, MissionError) as exc:
            return CommandAck(
                command="SET_MODE", result=MavResult.DENIED, detail=str(exc)
            )

    def make_proxy(self) -> MavProxy:
        """A MAVProxy-style client pumping this vehicle's loop."""
        return MavProxy(self.link, pump=self.step)

    # ------------------------------------------------------------------ #
    # Memory map
    # ------------------------------------------------------------------ #
    def _build_memory_map(self) -> None:
        """STM32F427-like layout with the paper's region assignments.

        The stabilizer task's region holds every rate PID (the paper:
        "PID controllers executed by the stabilizer process usually run in
        the same memory region"); navigation (position cascades, SINS,
        EKF) lives in a separate region the stabilizer attacker cannot
        touch.
        """
        self.memory.add_region(MemoryRegion(
            "FLASH", base=0x0800_0000, size=0x0020_0000,
            permissions=AccessMode.READ, description="firmware code",
        ))
        self.memory.add_region(MemoryRegion(
            "SRAM_KERNEL", base=0x2000_0000, size=0x8000,
            description="RTOS kernel data",
        ))
        self.memory.add_region(MemoryRegion(
            STABILIZER_REGION, base=0x2000_8000, size=0x4000,
            description="stabilizer task: attitude + rate PIDs",
        ))
        self.memory.add_region(MemoryRegion(
            NAV_REGION, base=0x2000_C000, size=0x4000,
            description="navigation task: position cascades, SINS, EKF",
        ))
        self.memory.add_region(MemoryRegion(
            "SRAM_IO", base=0x2001_0000, size=0x4000,
            description="logger and GCS buffers",
        ))

        def bind_pid(pid, region):
            for var in pid.STATE_VARIABLES:
                self.memory.bind(
                    f"{pid.name}.{var}", region,
                    getter=(lambda p=pid, v=var: p.state_variables()[v]),
                    setter=(lambda value, p=pid, v=var: p.set_state_variable(v, value)),
                )

        # Stabilizer region: the four rate/accel PIDs + angle-loop values.
        for pid in (self.attitude_ctrl.pid_roll, self.attitude_ctrl.pid_pitch,
                    self.attitude_ctrl.pid_yaw):
            bind_pid(pid, STABILIZER_REGION)
        pida = self.position_ctrl.axis_z.vel_ctrl
        pida.name = "PIDA"  # vertical acceleration PID logs as PIDA
        bind_pid(pida, STABILIZER_REGION)
        for var in ("ERR_R", "ERR_P", "ERR_Y", "TGT_RATE_R", "TGT_RATE_P",
                    "TGT_RATE_Y"):
            self.memory.bind(
                f"ATC.{var}", STABILIZER_REGION,
                getter=(lambda v=var: self.attitude_ctrl.state_variables()[v]),
            )

        # Navigation region: position cascades (sqrt + XY velocity PIDs),
        # SINS intermediates, EKF outputs.
        for axis in ("X", "Y"):
            cascade = self.position_ctrl.cascades[axis]
            bind_pid(cascade.vel_ctrl, NAV_REGION)
        for axis in ("X", "Y", "Z"):
            sqrt_ctrl = self.position_ctrl.cascades[axis].pos_ctrl
            for var in sqrt_ctrl.STATE_VARIABLES:
                self.memory.bind(
                    f"{sqrt_ctrl.name}.{var}", NAV_REGION,
                    getter=(lambda c=sqrt_ctrl, v=var: c.state_variables()[v]),
                    setter=(lambda value, c=sqrt_ctrl, v=var: c.set_state_variable(v, value)),
                )
        for var in self.sins.intermediates:
            writable = var in ("KVEL", "KPOS", "KBARO")
            self.memory.bind(
                f"SINS.{var}", NAV_REGION,
                getter=(lambda v=var: self.sins.intermediates[v]),
                setter=(
                    (lambda value, v=var: self.sins.intermediates.__setitem__(v, value))
                    if writable else None
                ),
            )
        for idx, var in enumerate(
            ("ROLL", "PITCH", "YAW", "VN", "VE", "VD", "PN", "PE", "PD")
        ):
            self.memory.bind(
                f"EKF.{var}", NAV_REGION,
                getter=(lambda i=idx: float(self.ekf.x[i])),
                setter=(lambda value, i=idx: self.ekf.x.__setitem__(i, value)),
            )

    def compromised_view(self, region: str = STABILIZER_REGION) -> CompromisedRegionView:
        """The attacker's memory view over one compromised region."""
        return CompromisedRegionView(self.memory, self.mpu, region)

    # ------------------------------------------------------------------ #
    # Flight state machine
    # ------------------------------------------------------------------ #
    def arm(self) -> None:
        """Arm the motors; the current position becomes home."""
        self.armed = True
        self.home = self.sim.vehicle.state.position.copy()

    def disarm(self) -> None:
        """Disarm (motors stop on the next cycle)."""
        self.armed = False

    def set_mode(self, mode: FlightMode) -> None:
        """Change flight mode, enforcing mission presence for AUTO."""
        if mode is FlightMode.AUTO and self.mission is None:
            raise MissionError("cannot enter AUTO without a mission")
        self.modes.set_mode(mode, self.sim.time)
        if mode is FlightMode.AUTO and self.mission is not None:
            if self.mission.status is MissionStatus.PENDING:
                self.mission.start()
        self.logger.write(
            "MODE", self.sim.time,
            {"Mode": float(mode.value), "Reason": 1.0}, force=True,
        )

    def set_guided_target(self, north: float, east: float, altitude: float) -> None:
        """Set the GUIDED-mode hover/goto target."""
        self.guided_target = np.array([north, east, -altitude])

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def _run_estimation(self, dt: float, profile=None) -> None:
        time_s = self.sim.time
        if profile is not None:
            t0 = _time.perf_counter()
        readings = self.sensors.sample(self.sim.vehicle, time_s, dt)
        self.last_readings = readings
        if profile is not None:
            t1 = _time.perf_counter()
            profile.add("sensors", t1 - t0, SCALAR)
        imu = readings.imu

        # Non-finite measurements (e.g. a GPS dropout fault reporting NaN)
        # must not poison the dead-reckoning stacks: the EKF rejects them
        # internally (counting ekf.rejected_updates); SINS/AHRS have no
        # such guard, so they are gated here and simply coast.
        imu_ok = bool(np.isfinite(imu.gyro).all() and np.isfinite(imu.accel).all())
        self.ekf.predict(imu.gyro, imu.accel, dt)
        if imu_ok:
            self.sins.predict(imu.gyro, imu.accel, dt)
            self.ahrs.update(imu.gyro, imu.accel, dt)
        timers = self._ekf_timers
        if time_s - timers["accel"] >= EKF_UPDATE_PERIODS["accel"]:
            self.ekf.update_accel_attitude(imu.accel)
            timers["accel"] = time_s
        if time_s - timers["mag"] >= EKF_UPDATE_PERIODS["mag"]:
            self.ekf.update_mag_yaw(readings.mag.field)
            timers["mag"] = time_s
        if time_s - timers["gps"] >= EKF_UPDATE_PERIODS["gps"]:
            self.ekf.update_gps(readings.gps.position, readings.gps.velocity)
            if bool(
                np.isfinite(readings.gps.position).all()
                and np.isfinite(readings.gps.velocity).all()
            ):
                self.sins.correct_gps(readings.gps.position, readings.gps.velocity)
            timers["gps"] = time_s
        if time_s - timers["baro"] >= EKF_UPDATE_PERIODS["baro"]:
            self.ekf.update_baro(readings.baro.altitude)
            if math.isfinite(readings.baro.altitude):
                self.sins.correct_baro(readings.baro.altitude)
            timers["baro"] = time_s
        if profile is not None:
            profile.add("estimation", _time.perf_counter() - t1, SCALAR)

    def estimated_state(self) -> tuple[np.ndarray, np.ndarray, tuple[float, float, float], np.ndarray]:
        """(position, velocity, euler, gyro) used by the control laws."""
        if self.use_truth_state:
            state = self.sim.vehicle.state
            return (
                state.position.copy(), state.velocity.copy(),
                state.euler, state.omega_body.copy(),
            )
        gyro = (
            self.last_readings.imu.gyro
            if self.last_readings is not None
            else np.zeros(3)
        )
        return (
            self.ekf.position, self.ekf.velocity,
            (self.ekf.roll, self.ekf.pitch, self.ekf.yaw), gyro,
        )

    # ------------------------------------------------------------------ #
    # Mode logic → position setpoint
    # ------------------------------------------------------------------ #
    def _navigation_targets(self, position: np.ndarray) -> AttitudeTargets | None:
        """Run mode logic; returns attitude targets or None for manual."""
        mode = self.modes.mode
        time_s = self.sim.time
        dt = self.sim.dt
        _, velocity, euler, _ = self.estimated_state()

        if mode is FlightMode.STABILIZE:
            return None
        if mode is FlightMode.GUIDED:
            target = (
                self.guided_target if self.guided_target is not None else self.home
            )
            setpoint = PositionSetpoint(position=target, yaw=self.last_targets.yaw)
        elif mode is FlightMode.AUTO:
            if self.mission is None:
                raise MissionError("AUTO mode with no mission")
            wp = self.mission.update(position, time_s)
            desired_yaw = self.mission.desired_yaw(position)
            # Slew the yaw target (ArduPilot limits mission yaw rate); an
            # instantaneous 90° heading step would excite a violent yaw
            # transient every leg change.
            from repro.utils.math3d import wrap_pi as _wrap_pi

            max_step = self._yaw_slew_rate * dt
            err = _wrap_pi(desired_yaw - self._yaw_target)
            self._yaw_target = _wrap_pi(
                self._yaw_target + float(np.clip(err, -max_step, max_step))
            )
            setpoint = PositionSetpoint(position=wp.position, yaw=self._yaw_target)
        elif mode is FlightMode.RTL:
            rtl_alt = self.params.get("RTL_ALT")
            target = np.array([self.home[0], self.home[1], -rtl_alt])
            setpoint = PositionSetpoint(position=target, yaw=self.last_targets.yaw)
        elif mode is FlightMode.LAND:
            land_speed = self.params.get("LAND_SPEED")
            target_down = position[2] + land_speed * 1.0  # 1 s look-ahead
            target = np.array([position[0], position[1], target_down])
            setpoint = PositionSetpoint(position=target, yaw=self.last_targets.yaw)
        else:  # pragma: no cover - all modes handled
            return None
        self._last_setpoint = setpoint
        return self.position_ctrl.update(setpoint, position, velocity, euler[2], dt)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _check_failsafes(self) -> None:
        """Battery and geofence failsafes.

        Battery: RTL on low voltage, LAND on critical (ArduCopter BATT_FS;
        the paper's uncontrolled failure ends with the deviated drone
        "eventually crash[ing] after draining the battery"). Geofence:
        breach of FENCE_RADIUS around home triggers RTL — the protection
        the gradual deviation attack must also outlast in practice.
        """
        if not self.armed or self.modes.mode is FlightMode.LAND:
            return
        battery = self.sim.vehicle.battery
        if battery.voltage <= self.params.get("BATT_CRT_VOLT") or battery.depleted:
            self.set_mode(FlightMode.LAND)
            return
        if battery.voltage <= self.params.get("BATT_LOW_VOLT"):
            if (
                self.params.get("BATT_FS_LOW_ACT") >= 2.0
                and self.modes.mode is not FlightMode.RTL
            ):
                self.set_mode(FlightMode.RTL)
                return
        if (
            self.params.get("FENCE_ENABLE") >= 1.0
            and self.modes.mode is not FlightMode.RTL
        ):
            position = self.sim.vehicle.state.position
            horizontal = float(np.hypot(
                position[0] - self.home[0], position[1] - self.home[1]
            ))
            breach = (
                horizontal > self.params.get("FENCE_RADIUS")
                or self.sim.vehicle.state.altitude > self.params.get("FENCE_ALT_MAX")
            )
            if breach and self.params.get("FENCE_ACTION") >= 1.0:
                self.set_mode(FlightMode.RTL)

    def step(self) -> None:
        """One full control cycle (sensors → estimate → control → physics).

        With a :func:`repro.obs.profile.hot_loop_profile` installed the
        profiled twin runs instead — identical operations plus stage
        timers, reporting the same five stages as the vectorized fleet
        (all attributed ``scalar`` here) — so the default path pays only
        this ``None`` check.
        """
        profile = active_profile()
        if profile is not None:
            self._step_profiled(profile)
            return
        dt = self.sim.dt
        self._metric_cycles.inc()
        self.link.service()
        if self.estimation_enabled:
            self._run_estimation(dt)
        self._check_failsafes()

        for hook in self.pre_control_hooks:
            hook(self)

        position, velocity, euler, gyro = self.estimated_state()
        if not self.armed:
            self.last_motors = np.zeros(4)
            self.sim.step(self.last_motors)
            self._write_logs()
            for hook in self.post_step_hooks:
                hook(self)
            return

        targets = self._navigation_targets(position)
        if targets is None:
            targets = self.manual_targets
        for hook in self.target_hooks:
            targets = hook(self, targets)
        self.last_targets = targets

        torque = self.attitude_ctrl.update(targets, euler, gyro, dt)
        for hook in self.torque_hooks:
            torque = hook(self, torque)
        self.last_torque = torque

        motors = self.mixer.mix(targets.throttle, torque)
        self.last_motors = motors
        self.sim.step(motors)

        self._write_logs()
        for hook in self.post_step_hooks:
            hook(self)

    def _step_profiled(self, profile) -> None:
        """:meth:`step` with per-stage wall-clock attribution.

        The identical operation sequence; only ``perf_counter`` reads are
        added, so a profiled run is bit-identical to an unprofiled one.
        Stage boundaries mirror the vectorized fleet's so the two
        breakdowns are directly comparable in ``BENCH_*.json``.
        """
        dt = self.sim.dt
        self._metric_cycles.inc()
        t0 = _time.perf_counter()
        self.link.service()
        t1 = _time.perf_counter()
        if self.estimation_enabled:
            self._run_estimation(dt, profile)  # adds sensors + estimation
        t2 = _time.perf_counter()
        self._check_failsafes()

        for hook in self.pre_control_hooks:
            hook(self)

        position, velocity, euler, gyro = self.estimated_state()
        t3 = _time.perf_counter()
        profile.add("mission", (t1 - t0) + (t3 - t2), SCALAR)
        if not self.armed:
            self.last_motors = np.zeros(4)
            t4 = _time.perf_counter()
            profile.add("control", t4 - t3, SCALAR)
            self.sim.step(self.last_motors)
            t5 = _time.perf_counter()
            profile.add("physics", t5 - t4, SCALAR)
            self._write_logs()
            for hook in self.post_step_hooks:
                hook(self)
            profile.add("mission", _time.perf_counter() - t5, SCALAR)
            return

        targets = self._navigation_targets(position)
        if targets is None:
            targets = self.manual_targets
        for hook in self.target_hooks:
            targets = hook(self, targets)
        self.last_targets = targets

        torque = self.attitude_ctrl.update(targets, euler, gyro, dt)
        for hook in self.torque_hooks:
            torque = hook(self, torque)
        self.last_torque = torque

        motors = self.mixer.mix(targets.throttle, torque)
        self.last_motors = motors
        t4 = _time.perf_counter()
        profile.add("control", t4 - t3, SCALAR)
        self.sim.step(motors)
        t5 = _time.perf_counter()
        profile.add("physics", t5 - t4, SCALAR)

        self._write_logs()
        for hook in self.post_step_hooks:
            hook(self)
        profile.add("mission", _time.perf_counter() - t5, SCALAR)

    def run(self, duration: float, stop_when=None) -> None:
        """Run the loop for ``duration`` seconds (early-out on crash).

        ``stop_when(vehicle) -> bool`` is evaluated every cycle.
        """
        steps = int(round(duration / self.sim.dt))
        with obs_span(
            "vehicle.run", duration_s=duration, mode=self.modes.mode.name
        ) as run_span:
            start_step = self.sim.step_count
            start_pc = _time.perf_counter()
            for _ in range(steps):
                if self.sim.vehicle.crashed:
                    break
                if stop_when is not None and stop_when(self):
                    break
                self.step()
            wall = _time.perf_counter() - start_pc
            stepped = self.sim.step_count - start_step
            run_span.set("steps", stepped)
            run_span.set("crashed", self.sim.vehicle.crashed)
            if wall > 0.0 and stepped:
                rate = stepped / wall
                run_span.set("step_rate_hz", round(rate, 1))
                get_registry().gauge("vehicle.step_rate_hz").set(rate)

    # ------------------------------------------------------------------ #
    # Convenience flight procedures
    # ------------------------------------------------------------------ #
    def takeoff(self, altitude: float, timeout: float = 30.0) -> bool:
        """Arm and climb to ``altitude`` in GUIDED; True on success."""
        if self.modes.mode is not FlightMode.GUIDED:
            self.set_mode(FlightMode.GUIDED)
        self.arm()
        start = self.sim.vehicle.state.position
        self.set_guided_target(float(start[0]), float(start[1]), altitude)
        self.run(
            timeout,
            stop_when=lambda v: abs(v.sim.vehicle.state.altitude - altitude)
            < TAKEOFF_ALT_TOLERANCE
            and float(np.linalg.norm(v.sim.vehicle.state.velocity))
            < TAKEOFF_VEL_TOLERANCE,
        )
        return (
            abs(self.sim.vehicle.state.altitude - altitude)
            < TAKEOFF_SUCCESS_TOLERANCE
        )

    def fly_mission(self, mission: Mission, timeout: float = 300.0) -> MissionStatus:
        """Load and fly a mission in AUTO; returns the final status."""
        self.mission = mission
        first_alt = mission.waypoints[0].altitude
        if not self.armed:
            if not self.takeoff(first_alt):
                raise MissionError("takeoff failed")
        self.set_mode(FlightMode.AUTO)
        self.run(
            timeout,
            stop_when=lambda v: v.mission.status is MissionStatus.COMPLETE,
        )
        return self.mission.status

    # ------------------------------------------------------------------ #
    # Dataflash logging
    # ------------------------------------------------------------------ #
    def _write_logs(self) -> None:
        time_s = self.sim.time
        logger = self.logger
        # Fast path: the logger decimates internally; probe with ATT which
        # shares the decimation phase with every other periodic message.
        state = self.sim.vehicle.state
        _, velocity, euler, gyro = self.estimated_state()
        targets = self.last_targets
        att = self.attitude_ctrl
        rate_tgt = att.rate_targets

        wrote = logger.write("ATT", time_s, {
            "DesR": rad2deg(targets.roll), "R": rad2deg(euler[0]),
            "DesP": rad2deg(targets.pitch), "P": rad2deg(euler[1]),
            "DesY": rad2deg(targets.yaw), "Y": rad2deg(euler[2]),
            "IR": rad2deg(float(gyro[0])),
            "IRErr": rad2deg(float(rate_tgt[0] - gyro[0])),
            "tv": targets.throttle,
            "ErrRP": math.hypot(
                targets.roll - euler[0], targets.pitch - euler[1]
            ),
            "ErrYaw": abs(targets.yaw - euler[2]),
        })
        if not wrote:
            return

        readings = self.last_readings
        if readings is not None:
            imu = readings.imu
            logger.write("IMU", time_s, {
                "GyrX": float(imu.gyro[0]), "GyrY": float(imu.gyro[1]),
                "GyrZ": float(imu.gyro[2]), "AccX": float(imu.accel[0]),
                "AccY": float(imu.accel[1]), "AccZ": float(imu.accel[2]),
                "T": 35.0, "GH": 1.0, "AH": 1.0,
            }, force=True)
            logger.write("BARO", time_s, {
                "Alt": readings.baro.altitude,
                "Press": readings.baro.pressure,
                "Temp": readings.baro.temperature,
                "CRt": -float(velocity[2]),
            }, force=True)
            logger.write("GPS", time_s, {
                "Status": 3.0, "NSats": float(readings.gps.num_sats),
                "HDop": readings.gps.hdop,
                "Lat": float(readings.gps.position[0]),
                "Lng": float(readings.gps.position[1]),
                "Alt": -float(readings.gps.position[2]),
                "Spd": float(np.hypot(*readings.gps.velocity[:2])),
                "GCrs": float(np.arctan2(
                    readings.gps.velocity[1], readings.gps.velocity[0]
                )),
                "VZ": float(readings.gps.velocity[2]),
            }, force=True)
            logger.write("MAG", time_s, {
                "MagX": float(readings.mag.field[0]),
                "MagY": float(readings.mag.field[1]),
                "MagZ": float(readings.mag.field[2]),
                "Health": 1.0,
            }, force=True)

        ekf = self.ekf
        ekf_fields = {
            "Roll": rad2deg(ekf.roll), "Pitch": rad2deg(ekf.pitch),
            "Yaw": rad2deg(ekf.yaw),
            "VN": float(ekf.velocity[0]), "VE": float(ekf.velocity[1]),
            "VD": float(ekf.velocity[2]),
            "dPD": float(ekf.velocity[2]) * self.sim.dt,
            "PN": float(ekf.position[0]), "PE": float(ekf.position[1]),
            "PD": float(ekf.position[2]),
            "GX": rad2deg(float(ekf.gyro_bias[0])),
            "GY": rad2deg(float(ekf.gyro_bias[1])),
            "GZ": rad2deg(float(ekf.gyro_bias[2])),
        }
        logger.write("EKF1", time_s, ekf_fields, force=True)
        logger.write("NKF1", time_s, ekf_fields, force=True)
        ahrs_euler = self.ahrs.euler
        logger.write("AHR2", time_s, {
            "Roll": rad2deg(ahrs_euler[0]), "Pitch": rad2deg(ahrs_euler[1]),
            "Yaw": rad2deg(ahrs_euler[2]), "Alt": state.altitude,
            "Lat": float(state.position[0]), "Lng": float(state.position[1]),
        }, force=True)

        for log_name, pid in (
            ("PIDR", att.pid_roll), ("PIDP", att.pid_pitch),
            ("PIDY", att.pid_yaw),
            ("PIDA", self.position_ctrl.axis_z.vel_ctrl),
        ):
            out = pid.last_output
            logger.write(log_name, time_s, {
                "Des": pid.input_error, "Act": 0.0,
                "P": out.p, "I": out.i, "D": out.d, "FF": out.ff,
            }, force=True)

        logger.write("RATE", time_s, {
            "RDes": rad2deg(float(rate_tgt[0])), "R": rad2deg(float(gyro[0])),
            "ROut": att.pid_roll.last_output.total,
            "PDes": rad2deg(float(rate_tgt[1])), "P": rad2deg(float(gyro[1])),
            "POut": att.pid_pitch.last_output.total,
            "YDes": rad2deg(float(rate_tgt[2])), "Y": rad2deg(float(gyro[2])),
            "YOut": att.pid_yaw.last_output.total,
            "ADes": 0.0, "A": 0.0,
            "AOut": self.position_ctrl.axis_z.vel_ctrl.last_output.total,
        }, force=True)

        setpoint = self._last_setpoint
        psc = self.position_ctrl
        logger.write("NTUN", time_s, {
            "DPosX": float(setpoint.position[0]),
            "DPosY": float(setpoint.position[1]),
            "PosX": float(state.position[0]), "PosY": float(state.position[1]),
            "DVelX": psc.axis_x.vel_target, "DVelY": psc.axis_y.vel_target,
            "VelX": float(velocity[0]), "VelY": float(velocity[1]),
            "DAccX": psc.axis_x.accel_cmd, "DAccY": psc.axis_y.accel_cmd,
        }, force=True)
        logger.write("CTUN", time_s, {
            "ThI": targets.throttle,
            "ThO": float(np.mean(self.last_motors)),
            "DAlt": -float(setpoint.position[2]),
            "Alt": state.altitude, "CRt": -float(velocity[2]),
        }, force=True)
        battery = self.sim.vehicle.battery
        logger.write("CURR", time_s, {
            "Volt": battery.voltage, "Curr": battery.current,
            "CurrTot": battery.consumed_mah,
        }, force=True)
        logger.write("POS", time_s, {
            "Lat": float(state.position[0]), "Lng": float(state.position[1]),
            "Alt": state.altitude, "RelAlt": state.altitude,
        }, force=True)
        logger.write("RCOU", time_s, {
            f"C{i + 1}": 1000.0 + 1000.0 * float(self.last_motors[i])
            for i in range(4)
        }, force=True)
        logger.write("SIM", time_s, {
            "Roll": rad2deg(state.euler[0]), "Pitch": rad2deg(state.euler[1]),
            "Yaw": rad2deg(state.euler[2]), "Alt": state.altitude,
            "Lat": float(state.position[0]), "Lng": float(state.position[1]),
        }, force=True)
