"""ArduCopter-style parameter table.

A realistic (several-hundred-entry) configurable parameter list in the
style of the ArduCopter full parameter list the paper cites ([27]). The
control-relevant entries are wired into the live controllers by
:class:`repro.firmware.vehicle.Vehicle`; the remainder reproduce the broad
parameter surface that makes exhaustive manual auditing infeasible
(Section III-C).
"""

from __future__ import annotations

from repro.firmware.parameters import ParameterDef

__all__ = ["arducopter_parameter_defs", "CONTROL_PARAMETER_NAMES"]

#: Parameters that are actually wired into the running control loops.
CONTROL_PARAMETER_NAMES = (
    "ATC_ANG_RLL_P",
    "ATC_ANG_PIT_P",
    "ATC_ANG_YAW_P",
    "ATC_RAT_RLL_P",
    "ATC_RAT_RLL_I",
    "ATC_RAT_RLL_D",
    "ATC_RAT_RLL_IMAX",
    "ATC_RAT_RLL_FLTD",
    "ATC_RAT_PIT_P",
    "ATC_RAT_PIT_I",
    "ATC_RAT_PIT_D",
    "ATC_RAT_PIT_IMAX",
    "ATC_RAT_PIT_FLTD",
    "ATC_RAT_YAW_P",
    "ATC_RAT_YAW_I",
    "ATC_RAT_YAW_D",
    "ATC_RAT_YAW_IMAX",
    "ATC_RAT_YAW_FLTD",
    "PSC_POSXY_P",
    "PSC_VELXY_P",
    "PSC_VELXY_I",
    "PSC_VELXY_D",
    "PSC_POSZ_P",
    "PSC_VELZ_P",
    "PSC_VELZ_I",
    "ANGLE_MAX",
    "WPNAV_SPEED",
    "WPNAV_RADIUS",
    "PILOT_SPEED_UP",
)


def _control_defs() -> list[ParameterDef]:
    defs = []
    for axis, p, i, d in (("RLL", 0.135, 0.135, 0.0036), ("PIT", 0.135, 0.135, 0.0036), ("YAW", 0.30, 0.06, 0.0)):
        defs.extend(
            [
                ParameterDef(
                    f"ATC_ANG_{axis}_P", 4.5, 0.5, 12.0,
                    f"{axis} axis angle controller P gain", "ATC",
                ),
                ParameterDef(
                    f"ATC_RAT_{axis}_P", p, 0.0, 2.0,
                    f"{axis} axis rate controller P gain", "ATC",
                ),
                ParameterDef(
                    f"ATC_RAT_{axis}_I", i, 0.0, 2.0,
                    f"{axis} axis rate controller I gain", "ATC",
                ),
                ParameterDef(
                    f"ATC_RAT_{axis}_D", d, 0.0, 0.1,
                    f"{axis} axis rate controller D gain", "ATC",
                ),
                ParameterDef(
                    f"ATC_RAT_{axis}_IMAX", 0.5, 0.0, 1.0,
                    f"{axis} axis rate controller integrator clamp", "ATC",
                ),
                ParameterDef(
                    f"ATC_RAT_{axis}_FLTD", 20.0, 0.0, 100.0,
                    f"{axis} axis rate controller derivative filter Hz", "ATC",
                ),
            ]
        )
    defs.extend(
        [
            ParameterDef("PSC_POSXY_P", 1.0, 0.1, 3.0, "Horizontal position P gain", "PSC"),
            ParameterDef("PSC_VELXY_P", 1.2, 0.1, 6.0, "Horizontal velocity P gain", "PSC"),
            ParameterDef("PSC_VELXY_I", 0.5, 0.0, 3.0, "Horizontal velocity I gain", "PSC"),
            ParameterDef("PSC_VELXY_D", 0.02, 0.0, 1.0, "Horizontal velocity D gain", "PSC"),
            ParameterDef("PSC_POSZ_P", 1.0, 0.1, 3.0, "Vertical position P gain", "PSC"),
            ParameterDef("PSC_VELZ_P", 2.5, 0.1, 8.0, "Vertical velocity P gain", "PSC"),
            ParameterDef("PSC_VELZ_I", 1.2, 0.0, 3.0, "Vertical velocity I gain", "PSC"),
            ParameterDef("ANGLE_MAX", 25.0, 10.0, 80.0, "Maximum lean angle, degrees", "ATC"),
            ParameterDef("WPNAV_SPEED", 5.0, 0.2, 20.0, "Waypoint horizontal speed m/s", "WPNAV"),
            ParameterDef("WPNAV_RADIUS", 1.0, 0.1, 10.0, "Waypoint acceptance radius m", "WPNAV"),
            ParameterDef("WPNAV_SPEED_UP", 2.5, 0.1, 10.0, "Waypoint climb speed m/s", "WPNAV"),
            ParameterDef("WPNAV_SPEED_DN", 1.5, 0.1, 5.0, "Waypoint descend speed m/s", "WPNAV"),
            ParameterDef("PILOT_SPEED_UP", 2.5, 0.5, 5.0, "Pilot climb rate m/s", "PILOT"),
            ParameterDef("SCHED_LOOP_RATE", 400.0, 50.0, 400.0, "Main loop rate Hz", "SCHED"),
        ]
    )
    return defs


def _sensor_defs() -> list[ParameterDef]:
    defs = [
        ParameterDef("INS_GYR_CAL", 1.0, 0.0, 1.0, "Gyro calibration on boot", "INS"),
        ParameterDef("INS_ACCSCAL_X", 1.0, 0.8, 1.2, "Accel X scale", "INS"),
        ParameterDef("INS_ACCSCAL_Y", 1.0, 0.8, 1.2, "Accel Y scale", "INS"),
        ParameterDef("INS_ACCSCAL_Z", 1.0, 0.8, 1.2, "Accel Z scale", "INS"),
        ParameterDef("EK2_ENABLE", 1.0, 0.0, 1.0, "Enable EKF2", "EK2"),
        ParameterDef("EK2_GPS_TYPE", 0.0, 0.0, 3.0, "EKF2 GPS fusion mode", "EK2"),
        ParameterDef("EK2_VELNE_M_NSE", 0.5, 0.05, 5.0, "EKF2 GPS velocity noise", "EK2"),
        ParameterDef("EK2_POSNE_M_NSE", 1.0, 0.1, 10.0, "EKF2 GPS position noise", "EK2"),
        ParameterDef("EK2_ALT_M_NSE", 1.0, 0.1, 10.0, "EKF2 baro noise", "EK2"),
        ParameterDef("EK2_GYRO_P_NSE", 0.03, 0.0001, 0.1, "EKF2 gyro process noise", "EK2"),
        ParameterDef("EK2_ACC_P_NSE", 0.6, 0.01, 1.0, "EKF2 accel process noise", "EK2"),
        ParameterDef("GPS_TYPE", 1.0, 0.0, 22.0, "GPS driver type", "GPS"),
        ParameterDef("GPS_HDOP_GOOD", 140.0, 100.0, 900.0, "Acceptable HDOP x100", "GPS"),
        ParameterDef("COMPASS_USE", 1.0, 0.0, 1.0, "Enable compass", "COMPASS"),
        ParameterDef("COMPASS_DEC", 0.0, -3.142, 3.142, "Magnetic declination rad", "COMPASS"),
        ParameterDef("BARO_PRIMARY", 0.0, 0.0, 2.0, "Primary barometer index", "BARO"),
    ]
    for idx in (1, 2, 3):
        for axis in ("X", "Y", "Z"):
            defs.append(
                ParameterDef(
                    f"INS_GYR{idx}OFFS_{axis}", 0.0, -1.0, 1.0,
                    f"Gyro {idx} offset {axis} rad/s", "INS",
                )
            )
            defs.append(
                ParameterDef(
                    f"INS_ACC{idx}OFFS_{axis}", 0.0, -3.5, 3.5,
                    f"Accel {idx} offset {axis} m/s/s", "INS",
                )
            )
            defs.append(
                ParameterDef(
                    f"COMPASS_OFS{idx}_{axis}", 0.0, -400.0, 400.0,
                    f"Compass {idx} hard-iron offset {axis} mG", "COMPASS",
                )
            )
    return defs


def _system_defs() -> list[ParameterDef]:
    defs = [
        ParameterDef("BATT_CAPACITY", 5100.0, 100.0, 60000.0, "Battery capacity mAh", "BATT"),
        ParameterDef("BATT_LOW_VOLT", 10.5, 6.0, 35.0, "Low battery voltage", "BATT"),
        ParameterDef("BATT_CRT_VOLT", 10.0, 6.0, 35.0, "Critical battery voltage", "BATT"),
        ParameterDef("BATT_FS_LOW_ACT", 2.0, 0.0, 5.0, "Low battery failsafe action", "BATT"),
        ParameterDef("FS_THR_ENABLE", 1.0, 0.0, 3.0, "Throttle failsafe", "FS"),
        ParameterDef("FS_EKF_ACTION", 1.0, 0.0, 3.0, "EKF failsafe action", "FS"),
        ParameterDef("FS_EKF_THRESH", 0.8, 0.6, 1.0, "EKF failsafe variance threshold", "FS"),
        ParameterDef("RTL_ALT", 15.0, 2.0, 100.0, "Return-to-launch altitude m", "RTL"),
        ParameterDef("RTL_SPEED", 0.0, 0.0, 20.0, "RTL speed m/s (0=WPNAV_SPEED)", "RTL"),
        ParameterDef("LAND_SPEED", 0.5, 0.3, 2.0, "Final landing descent m/s", "LAND"),
        ParameterDef("DISARM_DELAY", 10.0, 0.0, 127.0, "Auto-disarm delay s", "ARMING"),
        ParameterDef("ARMING_CHECK", 1.0, 0.0, 1.0, "Pre-arm checks enabled", "ARMING"),
        ParameterDef("LOG_BITMASK", 176126.0, 0.0, 1048575.0, "Dataflash logging bitmask", "LOG"),
        ParameterDef("LOG_FILE_RATEMAX", 0.0, 0.0, 400.0, "Max logging rate Hz", "LOG"),
        ParameterDef("MOT_SPIN_ARM", 0.08, 0.0, 0.3, "Motor spin when armed", "MOT"),
        ParameterDef("MOT_SPIN_MIN", 0.12, 0.0, 0.3, "Motor minimum spin", "MOT"),
        ParameterDef("MOT_SPIN_MAX", 0.95, 0.8, 1.0, "Motor maximum spin", "MOT"),
        ParameterDef("MOT_THST_HOVER", 0.37, 0.1, 0.8, "Learned hover throttle", "MOT"),
        ParameterDef("MOT_BAT_VOLT_MAX", 12.8, 6.0, 35.0, "Voltage compensation max", "MOT"),
        ParameterDef("MOT_BAT_VOLT_MIN", 9.9, 6.0, 35.0, "Voltage compensation min", "MOT"),
    ]
    return defs


def _io_defs() -> list[ParameterDef]:
    """RC input / servo output channel tables (bulk of the real list)."""
    defs: list[ParameterDef] = []
    for ch in range(1, 17):
        defs.extend(
            [
                ParameterDef(f"RC{ch}_MIN", 1100.0, 800.0, 2200.0, f"RC ch{ch} min PWM", "RC"),
                ParameterDef(f"RC{ch}_MAX", 1900.0, 800.0, 2200.0, f"RC ch{ch} max PWM", "RC"),
                ParameterDef(f"RC{ch}_TRIM", 1500.0, 800.0, 2200.0, f"RC ch{ch} trim PWM", "RC"),
                ParameterDef(f"RC{ch}_DZ", 30.0, 0.0, 200.0, f"RC ch{ch} deadzone", "RC"),
                ParameterDef(f"RC{ch}_REVERSED", 0.0, 0.0, 1.0, f"RC ch{ch} reversed", "RC"),
                ParameterDef(f"SERVO{ch}_MIN", 1100.0, 800.0, 2200.0, f"Servo {ch} min PWM", "SERVO"),
                ParameterDef(f"SERVO{ch}_MAX", 1900.0, 800.0, 2200.0, f"Servo {ch} max PWM", "SERVO"),
                ParameterDef(f"SERVO{ch}_TRIM", 1500.0, 800.0, 2200.0, f"Servo {ch} trim PWM", "SERVO"),
                ParameterDef(f"SERVO{ch}_FUNCTION", 0.0, 0.0, 136.0, f"Servo {ch} function", "SERVO"),
            ]
        )
    for idx in range(1, 7):
        defs.extend(
            [
                ParameterDef(f"BTN{idx}_FUNC", 0.0, 0.0, 50.0, f"Button {idx} function", "BTN"),
                ParameterDef(f"RELAY{idx}_PIN", -1.0, -1.0, 100.0, f"Relay {idx} pin", "RELAY"),
            ]
        )
    for idx in range(10):
        defs.append(
            ParameterDef(
                f"SCR_USER{idx}", 0.0, -1e6, 1e6, f"Scripting user parameter {idx}", "SCR"
            )
        )
    return defs


def _flight_defs() -> list[ParameterDef]:
    """Flight-mode, fence and navigation-aid parameters."""
    defs: list[ParameterDef] = []
    for idx in range(1, 7):
        defs.append(
            ParameterDef(f"FLTMODE{idx}", 0.0, 0.0, 27.0,
                         f"Flight mode slot {idx}", "FLTMODE")
        )
    defs.extend(
        [
            ParameterDef("FENCE_ENABLE", 0.0, 0.0, 1.0, "Geofence enabled", "FENCE"),
            ParameterDef("FENCE_TYPE", 7.0, 0.0, 15.0, "Geofence type bitmask", "FENCE"),
            ParameterDef("FENCE_RADIUS", 300.0, 30.0, 10000.0, "Circular fence radius m", "FENCE"),
            ParameterDef("FENCE_ALT_MAX", 100.0, 10.0, 1000.0, "Fence ceiling m", "FENCE"),
            ParameterDef("FENCE_MARGIN", 2.0, 1.0, 10.0, "Fence margin m", "FENCE"),
            ParameterDef("FENCE_ACTION", 1.0, 0.0, 5.0, "Fence breach action", "FENCE"),
            ParameterDef("AVOID_ENABLE", 3.0, 0.0, 7.0, "Object avoidance bitmask", "AVOID"),
            ParameterDef("AVOID_MARGIN", 2.0, 1.0, 10.0, "Avoidance margin m", "AVOID"),
            ParameterDef("AVOID_DIST_MAX", 10.0, 1.0, 100.0, "Avoidance max distance m", "AVOID"),
            ParameterDef("LOIT_SPEED", 12.5, 2.0, 20.0, "Loiter max speed m/s", "LOIT"),
            ParameterDef("LOIT_ACC_MAX", 5.0, 1.0, 10.0, "Loiter max acceleration", "LOIT"),
            ParameterDef("LOIT_BRK_ACCEL", 2.5, 0.25, 5.0, "Loiter brake accel", "LOIT"),
            ParameterDef("LOIT_BRK_DELAY", 1.0, 0.0, 2.0, "Loiter brake delay s", "LOIT"),
            ParameterDef("CIRCLE_RADIUS", 10.0, 0.0, 100.0, "Circle mode radius m", "CIRCLE"),
            ParameterDef("CIRCLE_RATE", 20.0, -90.0, 90.0, "Circle rate deg/s", "CIRCLE"),
            ParameterDef("ACRO_RP_P", 4.5, 1.0, 10.0, "Acro roll/pitch rate P", "ACRO"),
            ParameterDef("ACRO_YAW_P", 4.5, 1.0, 10.0, "Acro yaw rate P", "ACRO"),
            ParameterDef("ACRO_BAL_ROLL", 1.0, 0.0, 3.0, "Acro roll balance", "ACRO"),
            ParameterDef("ACRO_BAL_PITCH", 1.0, 0.0, 3.0, "Acro pitch balance", "ACRO"),
            ParameterDef("PHLD_BRAKE_RATE", 8.0, 4.0, 12.0, "PosHold brake rate deg/s", "PHLD"),
            ParameterDef("PHLD_BRAKE_ANGLE", 30.0, 15.0, 45.0, "PosHold brake angle deg", "PHLD"),
            ParameterDef("WP_YAW_BEHAVIOR", 2.0, 0.0, 3.0, "Yaw behaviour in missions", "WPNAV"),
            ParameterDef("WPNAV_ACCEL", 2.5, 0.5, 5.0, "Waypoint horizontal accel", "WPNAV"),
            ParameterDef("WPNAV_ACCEL_Z", 1.0, 0.5, 5.0, "Waypoint vertical accel", "WPNAV"),
            ParameterDef("WPNAV_JERK", 1.0, 1.0, 20.0, "Waypoint jerk limit", "WPNAV"),
            ParameterDef("TUNE", 0.0, 0.0, 59.0, "In-flight tuning knob", "TUNE"),
            ParameterDef("TUNE_MIN", 0.0, 0.0, 1000.0, "Tuning knob min", "TUNE"),
            ParameterDef("TUNE_MAX", 1.0, 0.0, 1000.0, "Tuning knob max", "TUNE"),
            ParameterDef("THR_DZ", 100.0, 0.0, 300.0, "Throttle deadzone PWM", "PILOT"),
            ParameterDef("PILOT_SPEED_DN", 1.5, 0.5, 5.0, "Pilot descent rate m/s", "PILOT"),
            ParameterDef("PILOT_ACCEL_Z", 2.5, 0.5, 5.0, "Pilot vertical accel", "PILOT"),
            ParameterDef("PILOT_Y_RATE", 2.0, 0.5, 10.0, "Pilot yaw rate", "PILOT"),
            ParameterDef("EKF_CHECK_THRESH", 0.8, 0.0, 1.0, "EKF check threshold", "FS"),
            ParameterDef("CRASH_CHECK", 1.0, 0.0, 1.0, "Crash-check enabled", "FS"),
            ParameterDef("GND_EFFECT_COMP", 1.0, 0.0, 1.0, "Ground effect comp", "INS"),
        ]
    )
    for idx in range(1, 11):
        defs.append(
            ParameterDef(f"RC{idx}_OPTION", 0.0, 0.0, 300.0,
                         f"Aux function for RC channel {idx}", "RC_OPT")
        )
    return defs


def arducopter_parameter_defs() -> list[ParameterDef]:
    """The full parameter table used by the virtual ArduCopter firmware."""
    return (
        _control_defs() + _sensor_defs() + _system_defs()
        + _io_defs() + _flight_defs()
    )
