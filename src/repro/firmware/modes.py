"""Flight modes (a subset of ArduCopter's mode machine).

Only the modes the paper's experiments exercise are implemented: STABILIZE
(manual attitude), GUIDED (hover at a point — the Fig. 7 scenario), AUTO
(waypoint mission — Figs. 6, 9, 10, 11), LAND and RTL.
"""

from __future__ import annotations

from enum import Enum

from repro.exceptions import MissionError

__all__ = ["FlightMode", "ModeManager"]


class FlightMode(Enum):
    """Supported flight modes with their ArduCopter mode numbers."""

    STABILIZE = 0
    GUIDED = 4
    RTL = 6
    AUTO = 3
    LAND = 9

    @property
    def is_autonomous(self) -> bool:
        """Whether the mode flies itself (no pilot stick input needed)."""
        return self in (FlightMode.GUIDED, FlightMode.AUTO, FlightMode.RTL, FlightMode.LAND)


#: Allowed transitions; ArduCopter allows most, but we reject nonsensical
#: ones (e.g. AUTO without a mission is checked by the vehicle).
_ALLOWED = {
    FlightMode.STABILIZE: {FlightMode.GUIDED, FlightMode.AUTO, FlightMode.LAND, FlightMode.RTL},
    FlightMode.GUIDED: {FlightMode.STABILIZE, FlightMode.AUTO, FlightMode.LAND, FlightMode.RTL},
    FlightMode.AUTO: {FlightMode.STABILIZE, FlightMode.GUIDED, FlightMode.LAND, FlightMode.RTL},
    FlightMode.RTL: {FlightMode.STABILIZE, FlightMode.GUIDED, FlightMode.AUTO, FlightMode.LAND},
    FlightMode.LAND: {FlightMode.STABILIZE, FlightMode.GUIDED, FlightMode.AUTO, FlightMode.RTL},
}


class ModeManager:
    """Tracks the active flight mode and validates transitions."""

    def __init__(self, initial: FlightMode = FlightMode.STABILIZE):
        self._mode = initial
        self._history: list[tuple[float, FlightMode]] = [(0.0, initial)]

    @property
    def mode(self) -> FlightMode:
        """The active flight mode."""
        return self._mode

    @property
    def history(self) -> list[tuple[float, FlightMode]]:
        """All (time, mode) transitions since construction."""
        return list(self._history)

    def set_mode(self, mode: FlightMode, time_s: float = 0.0) -> None:
        """Switch modes, enforcing the transition table."""
        if mode is self._mode:
            return
        if mode not in _ALLOWED[self._mode]:
            raise MissionError(
                f"illegal mode transition {self._mode.name} -> {mode.name}"
            )
        self._mode = mode
        self._history.append((time_s, mode))
