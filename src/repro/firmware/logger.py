"""Onboard dataflash logger.

Records the Table I message set during flight. The profiling stage
"downloads" the log after a mission (as the paper does via the onboard
dataflash memory logger) and converts it to a :class:`TraceTable` for the
statistical pipeline, with columns named ``MSG.Field``.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.exceptions import ReproError
from repro.firmware.log_defs import LOG_MESSAGE_DEFS
from repro.utils.timeseries import TraceTable

__all__ = ["DataflashLogger"]


class DataflashLogger:
    """In-memory dataflash log with schema enforcement and rate decimation.

    Parameters
    ----------
    log_rate_hz:
        Rate at which periodic messages are recorded. The paper logs the
        statistics dataset at 16 Hz (Section V-B); the control loop calls
        :meth:`write` at 400 Hz and the logger decimates.
    """

    def __init__(self, log_rate_hz: float = 16.0):
        if log_rate_hz <= 0.0:
            raise ReproError("log rate must be positive")
        self.log_rate_hz = log_rate_hz
        self._period = 1.0 / log_rate_hz
        self._last_write: dict[str, float] = {}
        self._records: dict[str, list[tuple[float, dict[str, float]]]] = {
            name: [] for name in LOG_MESSAGE_DEFS
        }

    def clear(self) -> None:
        """Erase the log (new flight)."""
        for records in self._records.values():
            records.clear()
        self._last_write.clear()

    def write(
        self, msg_type: str, time_s: float, values: Mapping[str, float],
        force: bool = False,
    ) -> bool:
        """Record one message if the decimation period has elapsed.

        Unknown message types or fields raise immediately — the schema is
        the KSVL contract the rest of the pipeline depends on. Returns
        whether the record was stored.
        """
        try:
            definition = LOG_MESSAGE_DEFS[msg_type]
        except KeyError:
            raise ReproError(f"unknown dataflash message type '{msg_type}'") from None
        last = self._last_write.get(msg_type, -np.inf)
        if not force and time_s - last < self._period - 1e-12:
            return False
        unknown = set(values) - set(definition.fields)
        if unknown:
            raise ReproError(f"{msg_type}: unknown fields {sorted(unknown)}")
        record = {field: float(values.get(field, 0.0)) for field in definition.fields}
        record["TimeUS"] = time_s * 1e6 if "TimeUS" in definition.fields else record.get("TimeUS", 0.0)
        self._records[msg_type].append((time_s, record))
        self._last_write[msg_type] = time_s
        return True

    def num_records(self, msg_type: str) -> int:
        """Number of stored records for a message type."""
        return len(self._records[msg_type])

    def records(self, msg_type: str) -> list[tuple[float, dict[str, float]]]:
        """All (time, fields) records of one message type."""
        return list(self._records[msg_type])

    def field(self, msg_type: str, field: str) -> np.ndarray:
        """All samples of ``msg_type.field`` as an array."""
        definition = LOG_MESSAGE_DEFS[msg_type]
        if field not in definition.fields:
            raise ReproError(f"{msg_type} has no field '{field}'")
        return np.asarray([rec[field] for _, rec in self._records[msg_type]])

    def to_trace_table(self, columns: list[str]) -> TraceTable:
        """Export selected ``MSG.Field`` columns as one aligned table.

        Alignment uses record index (all periodic messages are written in
        the same decimated cycle); the shortest column bounds the row
        count.
        """
        parsed = []
        for column in columns:
            msg_type, _, field = column.partition(".")
            if not field:
                raise ReproError(f"column '{column}' must look like 'MSG.Field'")
            parsed.append((column, self.field(msg_type, field)))
        if not parsed:
            raise ReproError("no columns requested")
        n_rows = min(len(values) for _, values in parsed)
        table = TraceTable([column for column, _ in parsed])
        times = [t for t, _ in self._records[parsed[0][0].partition(".")[0]]][:n_rows]
        for i, t in enumerate(times):
            table.append_row(t, {column: values[i] for column, values in parsed})
        return table
