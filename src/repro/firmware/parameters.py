"""Configurable-parameter registry (ArduPilot's ``PARM`` subsystem).

The registry backs two of the paper's attack-relevant behaviours:

* the MAVLink ``PARAM_SET`` remote-update path an attacker can drive from a
  compromised GCS channel (threat model, Section III-B), and
* range validation — ArduPilot rejects "obviously illegitimate parameter
  values" (Section VI), so attacks must stay inside declared ranges when
  they go through this path (writes through the compromised memory region
  bypass it).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.exceptions import ParameterError, ParameterRangeError

__all__ = ["ParameterDef", "ParameterStore"]


@dataclass(frozen=True)
class ParameterDef:
    """Declaration of one configurable parameter."""

    name: str
    default: float
    min_value: float = -math.inf
    max_value: float = math.inf
    description: str = ""
    group: str = ""

    def __post_init__(self) -> None:
        if self.min_value > self.max_value:
            raise ParameterError(
                f"{self.name}: min {self.min_value} > max {self.max_value}"
            )
        if not self.min_value <= self.default <= self.max_value:
            raise ParameterError(
                f"{self.name}: default {self.default} outside "
                f"[{self.min_value}, {self.max_value}]"
            )

    def validate(self, value: float) -> float:
        """Return ``value`` if it is in range, else raise."""
        if math.isnan(value):
            raise ParameterRangeError(f"{self.name}: NaN rejected")
        if not self.min_value <= value <= self.max_value:
            raise ParameterRangeError(
                f"{self.name}: {value} outside [{self.min_value}, {self.max_value}]"
            )
        return value


class ParameterStore:
    """Validated key/value store with change notifications.

    Subscribers (controllers, detectors) receive ``(name, value)`` on every
    accepted write, which is how a ``PARAM_SET`` from the GCS reaches the
    running control loops mid-flight — the paper's "remote control
    interface ... to adjust or debug control parameters during its
    flights".
    """

    def __init__(self):
        self._defs: dict[str, ParameterDef] = {}
        self._values: dict[str, float] = {}
        self._listeners: list[Callable[[str, float], None]] = []

    def __len__(self) -> int:
        return len(self._defs)

    def __contains__(self, name: str) -> bool:
        return name in self._defs

    def __iter__(self) -> Iterator[str]:
        return iter(self._defs)

    def declare(self, definition: ParameterDef) -> None:
        """Register one parameter; duplicate names are an error."""
        if definition.name in self._defs:
            raise ParameterError(f"parameter '{definition.name}' already declared")
        self._defs[definition.name] = definition
        self._values[definition.name] = definition.default

    def declare_all(self, definitions) -> None:
        """Register many parameters at once."""
        for definition in definitions:
            self.declare(definition)

    def definition(self, name: str) -> ParameterDef:
        """The declaration for ``name``."""
        try:
            return self._defs[name]
        except KeyError:
            raise ParameterError(f"unknown parameter '{name}'") from None

    def get(self, name: str) -> float:
        """Current value of ``name``."""
        try:
            return self._values[name]
        except KeyError:
            raise ParameterError(f"unknown parameter '{name}'") from None

    def set(self, name: str, value: float) -> float:
        """Validated write; notifies listeners; returns the stored value."""
        definition = self.definition(name)
        value = definition.validate(float(value))
        self._values[name] = value
        for listener in self._listeners:
            listener(name, value)
        return value

    def set_unchecked(self, name: str, value: float) -> float:
        """Write bypassing range validation (compromised-memory path).

        Still requires the parameter to exist; listeners are notified so
        the manipulation propagates to controllers exactly like a
        legitimate update.
        """
        if name not in self._defs:
            raise ParameterError(f"unknown parameter '{name}'")
        value = float(value)
        self._values[name] = value
        for listener in self._listeners:
            listener(name, value)
        return value

    def reset_defaults(self) -> None:
        """Restore every parameter to its declared default."""
        for name, definition in self._defs.items():
            self._values[name] = definition.default

    def subscribe(self, listener: Callable[[str, float], None]) -> None:
        """Register a change listener."""
        self._listeners.append(listener)

    def names(self, group: str | None = None) -> list[str]:
        """All parameter names, optionally filtered by group."""
        if group is None:
            return sorted(self._defs)
        return sorted(n for n, d in self._defs.items() if d.group == group)

    def snapshot(self) -> dict[str, float]:
        """Copy of all current values."""
        return dict(self._values)
