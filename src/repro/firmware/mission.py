"""Waypoint missions (the AUTO-mode flight plans of the paper's case studies)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.exceptions import MissionError
from repro.sim.world import path_distance

__all__ = ["Waypoint", "Mission", "MissionStatus", "square_mission", "line_mission"]


class MissionStatus(Enum):
    """Lifecycle of a mission run."""

    PENDING = "pending"
    ACTIVE = "active"
    COMPLETE = "complete"


@dataclass(frozen=True)
class Waypoint:
    """One mission waypoint in local NED coordinates."""

    north: float
    east: float
    altitude: float  # metres above ground, positive up
    hold_s: float = 0.0

    @property
    def position(self) -> np.ndarray:
        """NED position vector (down = -altitude)."""
        return np.array([self.north, self.east, -self.altitude])


@dataclass
class Mission:
    """An ordered list of waypoints plus acceptance bookkeeping."""

    waypoints: list[Waypoint]
    acceptance_radius: float = 1.0
    _current: int = field(default=0, repr=False)
    _status: MissionStatus = field(default=MissionStatus.PENDING, repr=False)
    _hold_until: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.waypoints:
            raise MissionError("mission needs at least one waypoint")
        if self.acceptance_radius <= 0.0:
            raise MissionError("acceptance radius must be positive")

    @property
    def status(self) -> MissionStatus:
        """Current mission lifecycle state."""
        return self._status

    @property
    def current_index(self) -> int:
        """Index of the active waypoint."""
        return self._current

    @property
    def current_waypoint(self) -> Waypoint:
        """The waypoint currently being flown to."""
        return self.waypoints[self._current]

    @property
    def path_points(self) -> list[np.ndarray]:
        """Waypoint positions as NED vectors (the reference path Pth)."""
        return [wp.position for wp in self.waypoints]

    def start(self) -> None:
        """Activate the mission from its first waypoint."""
        self._current = 0
        self._status = MissionStatus.ACTIVE
        self._hold_until = None

    def reset(self) -> None:
        """Return to the pending state."""
        self._current = 0
        self._status = MissionStatus.PENDING
        self._hold_until = None

    def update(self, position: np.ndarray, time_s: float) -> Waypoint:
        """Advance the waypoint index when the current one is reached.

        Returns the waypoint to fly toward this cycle.
        """
        if self._status is not MissionStatus.ACTIVE:
            return self.waypoints[self._current]
        wp = self.waypoints[self._current]
        distance = float(np.linalg.norm(position - wp.position))
        if distance <= self.acceptance_radius:
            if wp.hold_s > 0.0 and self._hold_until is None:
                self._hold_until = time_s + wp.hold_s
            if self._hold_until is None or time_s >= self._hold_until:
                self._hold_until = None
                if self._current + 1 < len(self.waypoints):
                    self._current += 1
                else:
                    self._status = MissionStatus.COMPLETE
        return self.waypoints[self._current]

    def cross_track_distance(self, position: np.ndarray) -> float:
        """Minimum distance from ``position`` to the mission polyline."""
        return path_distance(position, self.path_points)

    def desired_yaw(self, position: np.ndarray) -> float:
        """Heading toward the active waypoint (rad)."""
        wp = self.current_waypoint
        delta = wp.position - position
        if float(np.hypot(delta[0], delta[1])) < 1e-6:
            return 0.0
        return float(np.arctan2(delta[1], delta[0]))


def line_mission(
    length: float = 60.0, altitude: float = 10.0, legs: int = 2,
    acceptance_radius: float = 1.0,
) -> Mission:
    """Straight back-and-forth path — the paper's "couple of straight lines".

    The drone always moves forward along the roll axis between waypoints,
    the geometry that makes roll-axis manipulation the most effective
    deviation attack (Section V-C, "Effectiveness").
    """
    waypoints = [Waypoint(0.0, 0.0, altitude)]
    for leg in range(1, legs + 1):
        north = length if leg % 2 == 1 else 0.0
        waypoints.append(Waypoint(north, 0.0, altitude))
    return Mission(waypoints=waypoints, acceptance_radius=acceptance_radius)


def square_mission(
    side: float = 40.0, altitude: float = 10.0, acceptance_radius: float = 1.0
) -> Mission:
    """Square circuit mission used for the benign profiling flights."""
    waypoints = [
        Waypoint(0.0, 0.0, altitude),
        Waypoint(side, 0.0, altitude),
        Waypoint(side, side, altitude),
        Waypoint(0.0, side, altitude),
        Waypoint(0.0, 0.0, altitude),
    ]
    return Mission(waypoints=waypoints, acceptance_radius=acceptance_radius)
