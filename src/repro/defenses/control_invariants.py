"""Control-invariants detector (Choi et al., CCS'18 — reference [17]).

Mechanism: a system-identified model of the vehicle's rotational dynamics
is driven by the *actual motor commands*; the per-step absolute difference
between the model's attitude and the measured attitude is accumulated over
a sliding window and compared against a threshold. Configuration follows
the paper's Section V-C: checking frequency 400 Hz, window 1024 steps
(~2.5 s), threshold 400 000 (error unit: centidegrees summed over the
window and the three attitude axes).

The identified model is deliberately imperfect (a system-identification
fit, not the true plant): a configurable gain mismatch and no wind
knowledge. That imperfection produces the benign transient error band the
paper's stealthy attacks hide inside (Fig. 6b/9a).
"""

from __future__ import annotations

import numpy as np

from repro.control.mixer import MotorMixer
from repro.defenses.base import Detector
from repro.sim.config import AirframeConfig
from repro.utils.math3d import rad2deg, wrap_pi
from repro.utils.timeseries import RingBuffer

_MIX_FACTORS = np.vstack(
    [MotorMixer.ROLL_FACTORS, MotorMixer.PITCH_FACTORS, MotorMixer.YAW_FACTORS]
)
_MIX_NORM = np.sum(_MIX_FACTORS * _MIX_FACTORS, axis=1)

__all__ = ["ControlInvariantsDetector"]


class ControlInvariantsDetector(Detector):
    """Windowed cumulative-error monitor over a motor-driven attitude model."""

    def __init__(
        self,
        airframe: AirframeConfig,
        threshold: float = 400_000.0,
        window: int = 1024,
        model_gain_error: float = 0.95,
        observer_gain_angle: float = 4.0,
        observer_gain_rate: float = 8.0,
        warmup_s: float = 8.0,
        strict: bool = False,
    ):
        super().__init__("control-invariants", threshold, strict)
        self.airframe = airframe
        self.window = window
        self.model_gain_error = model_gain_error
        #: Error accumulation starts this long after arming (the detector
        #: is calibrated for stable flight, not the arming transient).
        self.warmup_s = warmup_s
        # The identified model runs as a leaky observer: predictions are
        # pulled toward the measurements with these gains (1/s), so model
        # mismatch appears as a bounded residual rather than an open-loop
        # divergence — the behaviour of a practical system-identified CI.
        self.observer_gain_angle = observer_gain_angle
        self.observer_gain_rate = observer_gain_rate
        # Identified model parameters (as system identification would
        # recover them, up to the configured mismatch).
        arm = airframe.arm_length * 0.7071
        self._torque_gain = np.array([
            4.0 * 0.5 * airframe.motor_max_thrust * arm,   # roll
            4.0 * 0.5 * airframe.motor_max_thrust * arm,   # pitch
            4.0 * 0.5 * airframe.motor_max_thrust * airframe.motor_torque_coeff,
        ]) * model_gain_error
        self._inertia = np.asarray(airframe.inertia_diag)
        self._angular_drag = airframe.angular_drag_coeff
        self._reset_state()

    def _reset_state(self) -> None:
        self._pred_euler = np.zeros(3)
        self._pred_rate = np.zeros(3)
        self._motor_state = np.zeros(4)  # identified first-order motor lag
        self._errors = RingBuffer(self.window)
        self._initialised = False
        self._armed_at: float | None = None

    def _score(self, vehicle) -> float | None:
        if not vehicle.armed:
            return None
        if self._armed_at is None:
            self._armed_at = vehicle.sim.time
        dt = vehicle.sim.dt
        _, _, euler, gyro = vehicle.estimated_state()
        measured = np.array(euler)

        gyro = np.asarray(gyro, dtype=float)
        if not (np.isfinite(measured).all() and np.isfinite(gyro).all()):
            # Degraded input: hold the window sum (cumulative monitor),
            # account the cycle, and leave the model untouched.
            self._note_degraded()
            return self._errors.sum if self._initialised else None
        if not self._initialised:
            self._pred_euler = measured.copy()
            self._pred_rate = gyro.copy()
            self._initialised = True

        # Drive the identified model with the actual motor outputs, passed
        # through the identified first-order actuator lag.
        commands = np.asarray(vehicle.last_motors, dtype=float)
        lag_alpha = dt / (dt + self.airframe.motor_time_constant)
        self._motor_state = self._motor_state + lag_alpha * (
            commands - self._motor_state
        )
        # Normalised differential commands per axis recovered from motors.
        diff = (_MIX_FACTORS @ self._motor_state) / _MIX_NORM
        torque = self._torque_gain * diff - self._angular_drag * self._pred_rate
        self._pred_rate = self._pred_rate + (torque / self._inertia) * dt
        self._pred_euler = self._pred_euler + self._pred_rate * dt
        # Leaky observer correction toward the measurements.
        angle_err = np.array([
            wrap_pi(float(m - p)) for m, p in zip(measured, self._pred_euler)
        ])
        self._pred_euler = self._pred_euler + (
            self.observer_gain_angle * dt
        ) * angle_err
        self._pred_rate = self._pred_rate + (
            self.observer_gain_rate * dt
        ) * (gyro - self._pred_rate)

        err = np.abs(
            np.array([wrap_pi(float(m - p)) for m, p in
                      zip(measured, self._pred_euler)])
        )
        if vehicle.sim.time - self._armed_at < self.warmup_s:
            return 0.0
        step_error = float(np.sum(rad2deg(err))) * 100.0  # centidegrees
        self._errors.append(step_error)
        return self._errors.sum
