"""Variable-level monitor — the countermeasure the paper proposes.

Section VI ("Countermeasures") argues that RAV monitors should
"enlarge monitoring objectives by combining control invariants or control
parameters with essential state variables ... within controller
functions", i.e. move from system-level to *variable-level* monitoring.

:class:`VariableLevelMonitor` implements that direction: during benign
profiling it learns, for each monitored state variable (typically the
TSVL), the envelope of its values and of its per-cycle change rate; at run
time a CUSUM over normalised envelope exceedances raises an alarm. The
gradual ``PIDR.INTEG`` manipulations that evade the system-level
control-invariants monitor push the integrator's value and jump rate far
outside its benign envelope and are caught (see
``benchmarks/bench_countermeasure.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.defenses.base import Detector
from repro.exceptions import AnalysisError

__all__ = ["VariableEnvelope", "VariableLevelMonitor"]


@dataclass
class VariableEnvelope:
    """Learned benign envelope of one state variable."""

    name: str
    low: float
    high: float
    max_abs_step: float

    def margin(self) -> float:
        """Half-width used to normalise exceedances."""
        return max((self.high - self.low) / 2.0, 1e-9)

    def exceedance(self, value: float, step: float) -> float:
        """Normalised amount by which (value, step) leaves the envelope."""
        out = 0.0
        if value > self.high:
            out += (value - self.high) / self.margin()
        elif value < self.low:
            out += (self.low - value) / self.margin()
        step_limit = max(self.max_abs_step, 1e-9)
        if abs(step) > step_limit:
            out += (abs(step) - step_limit) / step_limit
        return out


class VariableLevelMonitor(Detector):
    """CUSUM monitor over learned per-variable envelopes.

    Parameters
    ----------
    variables:
        Qualified state-variable names to watch (e.g. the TSVL entries
        bound in the memory map).
    threshold:
        Alarm threshold on the summed CUSUM statistic.
    envelope_margin:
        Multiplicative slack applied to the learned min/max and step
        bounds (benign variation beyond the training data).
    """

    def __init__(
        self,
        variables: list[str],
        threshold: float = 25.0,
        envelope_margin: float = 1.5,
        decay: float = 0.999,
        warmup_s: float = 8.0,
        strict: bool = False,
    ):
        super().__init__("variable-level-monitor", threshold, strict)
        if not variables:
            raise AnalysisError("monitor needs at least one variable")
        self.variables = list(variables)
        self.envelope_margin = envelope_margin
        self.decay = decay
        self.warmup_s = warmup_s
        self.envelopes: dict[str, VariableEnvelope] = {}
        self.collecting = False
        self._samples: dict[str, list[float]] = {v: [] for v in self.variables}
        self._reset_state()

    @property
    def trained(self) -> bool:
        """Whether envelopes have been learned."""
        return bool(self.envelopes)

    def _reset_state(self) -> None:
        self._cusum = 0.0
        self._last_values: dict[str, float] = {}
        self._armed_at: float | None = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _read(self, vehicle, name: str) -> float:
        return vehicle.memory.variable(name).read()

    def finish_collection(self) -> None:
        """Fit envelopes from the samples gathered while collecting."""
        for name, samples in self._samples.items():
            if len(samples) < 20:
                raise AnalysisError(
                    f"not enough benign samples for '{name}' ({len(samples)})"
                )
            values = np.asarray(samples)
            steps = np.abs(np.diff(values))
            center = (values.max() + values.min()) / 2.0
            half = (values.max() - values.min()) / 2.0 * self.envelope_margin
            half = max(half, 1e-6)
            self.envelopes[name] = VariableEnvelope(
                name=name,
                low=float(center - half),
                high=float(center + half),
                max_abs_step=float(max(steps.max(), 1e-9) * self.envelope_margin),
            )
            self._samples[name] = []
        self.collecting = False

    def train_on_benign(self, vehicle_factory, mission_factory, timeout: float = 150.0) -> None:
        """Fly one benign mission and learn the envelopes."""
        vehicle = vehicle_factory()
        self.collecting = True
        self.attach(vehicle)
        vehicle.fly_mission(mission_factory(), timeout=timeout)
        self.detach()
        self.finish_collection()
        self.reset()

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #
    def _score(self, vehicle) -> float | None:
        if not vehicle.armed:
            return None
        values = {name: self._read(vehicle, name) for name in self.variables}
        if not all(np.isfinite(v) for v in values.values()):
            # Degraded input: skip the sample (per-cycle monitor); NaN must
            # neither enter the training envelopes nor the CUSUM.
            self._note_degraded()
            return None
        if self.collecting:
            for name in self.variables:
                self._samples[name].append(values[name])
            return None
        if not self.trained:
            return None
        if self._armed_at is None:
            self._armed_at = vehicle.sim.time
        if vehicle.sim.time - self._armed_at < self.warmup_s:
            return 0.0
        total_exceedance = 0.0
        for name in self.variables:
            value = values[name]
            last = self._last_values.get(name, value)
            self._last_values[name] = value
            total_exceedance += self.envelopes[name].exceedance(
                value, value - last
            )
        self._cusum = max(0.0, self._cusum * self.decay + total_exceedance)
        return self._cusum
