"""ML-based controller-output monitor (Ding et al., RAID'21 — ref. [16]).

Mechanism: a model trained on benign flights approximates the numerical
behaviour of a PID controller from its observable inputs; at run time the
*control output distance* — the absolute difference between the model's
predicted output and the controller's actual output — is compared against
a benign error bound (the paper's threshold: 0.01).

Like the DNN the original work trains, our ridge-regression approximator
is only valid inside the benign envelope: inference features are clipped
to the training range, so inputs far outside it (a naive attack) yield a
bounded prediction against an unbounded actual output — a large distance —
while in-envelope manipulations (ARES' gradual scaler drift) stay inside
the benign error band (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.control.pid import PIDController
from repro.defenses.base import Detector
from repro.exceptions import AnalysisError

__all__ = ["PidApproximator", "MLOutputMonitor"]


class PidApproximator:
    """Ridge-regression approximation of one PID's input→output map."""

    FEATURES = ("target", "measurement", "error", "integrator", "derivative")

    def __init__(self, ridge_lambda: float = 1e-6, envelope_margin: float = 1.5):
        self.ridge_lambda = ridge_lambda
        #: Clip bounds are widened by this factor beyond the training
        #: min/max so unseen-but-ordinary flights (another seed, slightly
        #: different wind) stay in envelope while attack inputs — orders
        #: of magnitude outside — remain clipped.
        self.envelope_margin = envelope_margin
        self.weights: np.ndarray | None = None
        self.feature_min: np.ndarray | None = None
        self.feature_max: np.ndarray | None = None
        self.train_residual_std = 0.0

    @property
    def trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.weights is not None

    def fit(self, features: np.ndarray, outputs: np.ndarray) -> None:
        """Train on benign (n, 5) features and (n,) controller outputs."""
        features = np.asarray(features, dtype=float)
        outputs = np.asarray(outputs, dtype=float)
        if features.ndim != 2 or features.shape[1] != len(self.FEATURES):
            raise AnalysisError(
                f"features must be (n, {len(self.FEATURES)}), got {features.shape}"
            )
        if features.shape[0] < 10:
            raise AnalysisError("need at least 10 benign samples to train")
        center = (features.max(axis=0) + features.min(axis=0)) / 2.0
        half = (features.max(axis=0) - features.min(axis=0)) / 2.0
        half = np.maximum(half * self.envelope_margin, 1e-9)
        self.feature_min = center - half
        self.feature_max = center + half
        design = np.column_stack([np.ones(features.shape[0]), features])
        gram = design.T @ design + self.ridge_lambda * np.eye(design.shape[1])
        self.weights = np.linalg.solve(gram, design.T @ outputs)
        residuals = outputs - design @ self.weights
        self.train_residual_std = float(residuals.std())

    def predict(self, features: np.ndarray) -> float:
        """Predicted output for one feature vector (clipped to envelope)."""
        if self.weights is None:
            raise AnalysisError("approximator not trained")
        clipped = np.clip(
            np.asarray(features, dtype=float), self.feature_min, self.feature_max
        )
        return float(self.weights[0] + clipped @ self.weights[1:])


def _pid_features(pid: PIDController, target: float, measurement: float) -> np.ndarray:
    return np.array([
        target, measurement, target - measurement,
        pid.integrator, pid.derivative,
    ])


class MLOutputMonitor(Detector):
    """Control-output-distance monitor over the roll-rate PID.

    Call :meth:`train_on_benign` with a benign vehicle first (or attach in
    ``collect`` mode and fit later); at run time the score is the distance
    between the approximator's predicted PIDR output and the actual one.
    """

    def __init__(self, threshold: float = 0.01, warmup_s: float = 10.0,
                 strict: bool = False):
        super().__init__("ml-output-monitor", threshold, strict)
        self.approximator = PidApproximator()
        self._collected_features: list[np.ndarray] = []
        self._collected_outputs: list[float] = []
        self.collecting = False
        #: Detection starts this long after arming — the arming/takeoff
        #: transient varies run to run and is outside the benign envelope.
        self.warmup_s = warmup_s
        self._armed_at: float | None = None

    def _reset_state(self) -> None:
        # The trained model survives resets by design.
        self._armed_at = None

    @staticmethod
    def _observe(vehicle) -> tuple[np.ndarray, float]:
        pid = vehicle.attitude_ctrl.pid_roll
        target = float(vehicle.attitude_ctrl.rate_targets[0])
        _, _, _, gyro = vehicle.estimated_state()
        features = _pid_features(pid, target, float(gyro[0]))
        return features, float(pid.last_output.total)

    def _score(self, vehicle) -> float | None:
        if not vehicle.armed:
            return None
        features, actual = self._observe(vehicle)
        if not (np.isfinite(features).all() and np.isfinite(actual)):
            # Degraded input: skip the sample (per-cycle monitor) so a NaN
            # feature can neither poison collection nor fake a distance.
            self._note_degraded()
            return None
        if self.collecting:
            self._collected_features.append(features)
            self._collected_outputs.append(actual)
            return None
        if not self.approximator.trained:
            return None
        if self._armed_at is None:
            self._armed_at = vehicle.sim.time
        if vehicle.sim.time - self._armed_at < self.warmup_s:
            return 0.0
        predicted = self.approximator.predict(features)
        return abs(actual - predicted)

    def finish_collection(self) -> None:
        """Fit the approximator on the samples gathered while collecting."""
        if not self._collected_features:
            raise AnalysisError("no benign samples collected")
        self.approximator.fit(
            np.vstack(self._collected_features),
            np.asarray(self._collected_outputs),
        )
        self._collected_features.clear()
        self._collected_outputs.clear()
        self.collecting = False

    def train_on_benign(self, vehicle_factory, duration: float = 20.0) -> None:
        """Convenience: fly a benign hover and fit the approximator.

        ``vehicle_factory() -> Vehicle`` must produce a vehicle matching
        the monitored one (same gains).
        """
        vehicle = vehicle_factory()
        self.collecting = True
        self.attach(vehicle)
        vehicle.takeoff(3.0)
        vehicle.run(duration)
        self.detach()
        self.finish_collection()

    def train_on_mission(self, vehicle_factory, mission_factory,
                         timeout: float = 150.0) -> None:
        """Fit on a benign *mission* so the envelope covers maneuvering.

        Use this variant when the monitored vehicle flies missions rather
        than hovering — an approximator trained only on hover data flags
        ordinary waypoint maneuvers as out-of-envelope.
        """
        vehicle = vehicle_factory()
        self.collecting = True
        self.attach(vehicle)
        vehicle.fly_mission(mission_factory(), timeout=timeout)
        self.detach()
        self.finish_collection()
