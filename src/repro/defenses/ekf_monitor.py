"""Sensor-estimation detector in the style of SAVIOR (ref. [18]).

SAVIOR builds a nonlinear physics model driven by the *control inputs*
and checks the *sensor measurements* against the model's predictions with
a CUSUM over the innovations: spoofed sensor data diverges from what the
actuation physically implies. This detector reproduces that mechanism on
the gyroscope channel: a motor-driven rotational model predicts the body
rates; the residual is the gyro innovation.

Because ARES manipulates *controller* variables rather than sensor data,
the motors genuinely produce the motion the gyro reports — the innovation
stays at noise level and the detector never alarms (the Fig. 8 evasion).
A sensor-spoofing attack (e.g. a gyro bias injection) is what this
detector exists to catch, and it does (see tests).

The companion plot of Fig. 8b — the ``ATT.R`` vs ``EKF1.Roll`` residual —
is produced by the experiment module; both estimators ride the same
genuine sensors, so that residual also stays near zero under the attack.
"""

from __future__ import annotations

import numpy as np

from repro.control.mixer import MotorMixer
from repro.defenses.base import Detector
from repro.sim.config import AirframeConfig
from repro.utils.math3d import rad2deg

_MIX_FACTORS = np.vstack(
    [MotorMixer.ROLL_FACTORS, MotorMixer.PITCH_FACTORS, MotorMixer.YAW_FACTORS]
)
_MIX_NORM = np.sum(_MIX_FACTORS * _MIX_FACTORS, axis=1)

__all__ = ["EKFResidualDetector"]


class EKFResidualDetector(Detector):
    """CUSUM over the gyro-vs-physics-model innovation (deg/s)."""

    def __init__(
        self,
        airframe: AirframeConfig | None = None,
        threshold: float = 400.0,
        residual_allowance_dps: float = 6.0,
        decay: float = 0.995,
        observer_gain: float = 8.0,
        warmup_s: float = 15.0,
        strict: bool = False,
    ):
        super().__init__("ekf-residual", threshold, strict)
        self.airframe = airframe
        self.residual_allowance_dps = residual_allowance_dps
        self.decay = decay
        self.observer_gain = observer_gain
        #: Accumulation starts this long after arming (model convergence).
        self.warmup_s = warmup_s
        self._reset_state()

    def _reset_state(self) -> None:
        self._cusum = 0.0
        self.last_residual_dps = 0.0
        self._pred_rate = np.zeros(3)
        self._motor_state = np.zeros(4)
        self._armed_at: float | None = None
        self._initialised = False

    def _ensure_model(self, vehicle) -> None:
        if self.airframe is None:
            self.airframe = vehicle.config.airframe
        if not self._initialised:
            arm = self.airframe.arm_length * 0.7071
            self._torque_gain = np.array([
                4.0 * 0.5 * self.airframe.motor_max_thrust * arm,
                4.0 * 0.5 * self.airframe.motor_max_thrust * arm,
                4.0 * 0.5 * self.airframe.motor_max_thrust
                * self.airframe.motor_torque_coeff,
            ])
            self._inertia = np.asarray(self.airframe.inertia_diag)
            self._initialised = True

    def _score(self, vehicle) -> float | None:
        if not vehicle.armed or not vehicle.estimation_enabled:
            return None
        if vehicle.last_readings is None:
            return None
        self._ensure_model(vehicle)
        if self._armed_at is None:
            self._armed_at = vehicle.sim.time
        dt = vehicle.sim.dt

        # Physics model driven by the actual motor commands.
        commands = np.asarray(vehicle.last_motors, dtype=float)
        lag_alpha = dt / (dt + self.airframe.motor_time_constant)
        self._motor_state = self._motor_state + lag_alpha * (
            commands - self._motor_state
        )
        diff = (_MIX_FACTORS @ self._motor_state) / _MIX_NORM
        torque = self._torque_gain * diff
        torque = torque - self.airframe.angular_drag_coeff * self._pred_rate
        self._pred_rate = self._pred_rate + (torque / self._inertia) * dt

        gyro = np.asarray(vehicle.last_readings.imu.gyro, dtype=float)
        if not np.isfinite(gyro).all():
            # Degraded input: hold the CUSUM, skip the observer update.
            self._note_degraded()
            return self._cusum
        innovation = gyro - self._pred_rate
        # Leaky observer keeps the model anchored to honest measurements;
        # a sustained sensor-vs-physics mismatch still shows as residual.
        self._pred_rate = self._pred_rate + (self.observer_gain * dt) * innovation
        residual = float(np.sum(np.abs(rad2deg(innovation))))
        self.last_residual_dps = residual

        if vehicle.sim.time - self._armed_at < self.warmup_s:
            return 0.0
        self._cusum = max(
            0.0,
            self._cusum * self.decay + residual - self.residual_allowance_dps,
        )
        return self._cusum
