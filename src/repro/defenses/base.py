"""Common detector machinery.

Every defense implements :class:`Detector`: it is attached to a vehicle's
``post_step`` hook, maintains a score history and raises an alarm when its
score crosses its threshold. The RL reward's "-inf if an anomaly is
detected" term (Eqs. 4–5) reads :attr:`alarmed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DetectionAlarm
from repro.obs.log import get_logger
from repro.obs.metrics import get_registry

__all__ = ["DetectorRecord", "Detector"]

_log = get_logger(__name__)


@dataclass
class DetectorRecord:
    """Score history of one detector run."""

    times: list[float] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)
    alarm_times: list[float] = field(default_factory=list)

    @property
    def max_score(self) -> float:
        """Largest score observed (0 if never sampled)."""
        return max(self.scores) if self.scores else 0.0

    def scores_array(self) -> np.ndarray:
        """Scores as an array."""
        return np.asarray(self.scores)

    def times_array(self) -> np.ndarray:
        """Sample times as an array."""
        return np.asarray(self.times)


class Detector:
    """Base class for runtime monitors.

    Parameters
    ----------
    name:
        Identifier used in alarms and reports.
    threshold:
        Alarm threshold on the detector score.
    strict:
        When True the first alarm raises :class:`DetectionAlarm` instead of
        just being recorded.

    Degraded-data contract: when a cycle's inputs are unusable (non-finite
    sensor readings under a fault), a detector calls :meth:`_note_degraded`
    and then either *holds* its previous score (cumulative monitors: the
    control-invariants window, the EKF-residual CUSUM) or *skips* the
    sample (per-cycle monitors: the ML output monitor, the variable-level
    monitor return None). Either way ``degraded_samples`` and the
    ``defense.degraded_samples`` metric account for every affected cycle,
    so fault-time FPR/TPR shifts are measurable rather than silent.
    """

    def __init__(self, name: str, threshold: float, strict: bool = False):
        self.name = name
        self.threshold = threshold
        self.strict = strict
        self.record = DetectorRecord()
        self._vehicle = None
        #: Cycles where degraded input forced a hold/skip since last reset.
        self.degraded_samples = 0
        # Per-detector instruments, resolved once for the per-step hook.
        registry = get_registry()
        self._metric_samples = registry.counter(
            "detector.samples", detector=name
        )
        self._metric_alarms = registry.counter(
            "detector.alarms", detector=name
        )
        self._metric_degraded = registry.counter(
            "defense.degraded_samples", detector=name
        )

    @property
    def alarmed(self) -> bool:
        """Whether any alarm has fired since the last reset."""
        return bool(self.record.alarm_times)

    @property
    def first_alarm_time(self) -> float | None:
        """Time of the first alarm, if any."""
        return self.record.alarm_times[0] if self.record.alarm_times else None

    def reset(self) -> None:
        """Clear history (new flight)."""
        self.record = DetectorRecord()
        self.degraded_samples = 0
        self._reset_state()

    def _note_degraded(self) -> None:
        """Account one cycle whose input was unusable (held or skipped)."""
        self.degraded_samples += 1
        self._metric_degraded.inc()

    def attach(self, vehicle) -> None:
        """Install on a vehicle's post-step hook."""
        self._vehicle = vehicle
        vehicle.post_step_hooks.append(self._on_step)

    def detach(self) -> None:
        """Remove from the vehicle."""
        if self._vehicle is not None and self._on_step in self._vehicle.post_step_hooks:
            self._vehicle.post_step_hooks.remove(self._on_step)
        self._vehicle = None

    def _on_step(self, vehicle) -> None:
        score = self._score(vehicle)
        if score is None:
            return
        time_s = vehicle.sim.time
        self._metric_samples.inc()
        self.record.times.append(time_s)
        self.record.scores.append(float(score))
        if score > self.threshold:
            self._metric_alarms.inc()
            _log.debug(
                "%s alarm at t=%.2fs (score %.4g > %.4g)",
                self.name, time_s, float(score), self.threshold,
            )
            self.record.alarm_times.append(time_s)
            if self.strict:
                raise DetectionAlarm(self.name, time_s, float(score), self.threshold)

    # -- subclass API -------------------------------------------------- #
    def _score(self, vehicle) -> float | None:
        """Compute the current anomaly score (None = not sampled yet)."""
        raise NotImplementedError

    def _reset_state(self) -> None:
        """Clear subclass-internal state on reset (default: nothing)."""
