"""Reimplemented RAV defenses the paper evaluates evasion against."""

from repro.defenses.base import Detector, DetectorRecord
from repro.defenses.control_invariants import ControlInvariantsDetector
from repro.defenses.ekf_monitor import EKFResidualDetector
from repro.defenses.ml_monitor import MLOutputMonitor, PidApproximator
from repro.defenses.variable_monitor import VariableEnvelope, VariableLevelMonitor

__all__ = [
    "ControlInvariantsDetector",
    "Detector",
    "DetectorRecord",
    "EKFResidualDetector",
    "MLOutputMonitor",
    "PidApproximator",
    "VariableEnvelope",
    "VariableLevelMonitor",
]
