"""Intermediate-variable tracer.

Plays the role of the paper's "memory instrumentation techniques and
operational data traces" ([13], Valgrind-style tracing): it samples the
memory-bound intermediate variables of the victim regions each logging
cycle, *without* any semantic knowledge of the controller code — it reads
raw bindings from the memory map, matching ARES' data-driven stance
(no semantic disassembly required).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AnalysisError
from repro.firmware.vehicle import Vehicle
from repro.utils.timeseries import TraceTable

__all__ = ["VariableTracer", "identify_controller_functions"]


def identify_controller_functions(vehicle: Vehicle) -> dict[str, list[str]]:
    """Locate controller functions and their variables via the memory map.

    Mirrors the "controller function identification" step: returns, per
    MPU region, the qualified names of all bound state variables — the
    attacker-relevant inventory without firmware semantics.
    """
    return {
        region.name: vehicle.memory.variable_names(region.name)
        for region in vehicle.memory.regions()
        if vehicle.memory.variable_names(region.name)
    }


class VariableTracer:
    """Samples memory-bound variables synchronously with the dataflash log.

    Attach to a vehicle before flight; the tracer hooks ``post_step`` and
    records one row whenever the vehicle's logger records an ATT message
    (so traced intermediates align row-for-row with log-derived KSVL
    columns when both are exported).

    The constructor attaches immediately. Use the tracer as a context
    manager (or call :meth:`detach`) so repeated profiling runs against
    one vehicle never accumulate stale ``post_step`` hooks::

        with VariableTracer(vehicle, ["PIDR.INTEG"]) as tracer:
            vehicle.fly_mission(mission)
        matrix = tracer.to_matrix()   # hook already removed here
    """

    def __init__(self, vehicle: Vehicle, variables: list[str]):
        missing = [
            name for name in variables
            if not self._is_bound(vehicle, name)
        ]
        if missing:
            raise AnalysisError(f"variables not bound in memory map: {missing}")
        self.vehicle = vehicle
        self.variables = list(variables)
        self.table = TraceTable(self.variables)
        self._last_att_count = vehicle.logger.num_records("ATT")
        self.attach()

    @staticmethod
    def _is_bound(vehicle: Vehicle, name: str) -> bool:
        try:
            vehicle.memory.variable(name)
            return True
        except Exception:
            return False

    @property
    def attached(self) -> bool:
        """Whether the tracer's hook is currently installed."""
        return self._on_step in self.vehicle.post_step_hooks

    def attach(self) -> None:
        """(Re-)install the vehicle hook; idempotent."""
        if not self.attached:
            self.vehicle.post_step_hooks.append(self._on_step)

    def detach(self) -> None:
        """Stop tracing (remove the vehicle hook); idempotent."""
        if self._on_step in self.vehicle.post_step_hooks:
            self.vehicle.post_step_hooks.remove(self._on_step)

    def __enter__(self) -> VariableTracer:
        self.attach()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.detach()
        return False

    def _on_step(self, vehicle: Vehicle) -> None:
        att_count = vehicle.logger.num_records("ATT")
        if att_count == self._last_att_count:
            return
        self._last_att_count = att_count
        values = {
            name: vehicle.memory.variable(name).read() for name in self.variables
        }
        self.table.append_row(vehicle.sim.time, values)

    def to_matrix(self) -> np.ndarray:
        """Traced samples as an (n_cycles, n_variables) matrix."""
        return self.table.to_matrix()
