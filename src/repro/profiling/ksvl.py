"""Known state variable lists (KSVL) per controller function.

The KSVL is "established through easily accessible means such as the
onboard dataflash memory logger" (Section IV-B). This module derives the
per-experiment KSVLs of the paper's Table II from the log schema, plus the
roll-control ESVL of Fig. 5.
"""

from __future__ import annotations

from repro.exceptions import AnalysisError
from repro.firmware.log_defs import LOG_MESSAGE_DEFS

__all__ = [
    "ksvl_all",
    "ksvl_for_controller",
    "intermediates_for_controller",
    "ROLL_ESVL_COLUMNS",
    "ROLL_DISPLAY_NAMES",
]

#: Table II row "PID": 28 attitude-related available log variables.
_PID_KSVL = (
    ["ATT.DesR", "ATT.R", "ATT.DesP", "ATT.P", "ATT.DesY", "ATT.Y",
     "ATT.IR", "ATT.IRErr", "ATT.tv"]
    + [f"IMU.{f}" for f in ("GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ")]
    + [f"EKF1.{f}" for f in ("Roll", "VN", "VE", "VD", "dPD",
                             "PN", "PE", "PD", "GX", "GY", "GZ")]
    + ["RATE.RDes", "RATE.ROut"]
)

#: Table II row "Sqrt": 9 navigation-tuning log variables.
_SQRT_KSVL = (
    [f"NTUN.{f}" for f in ("DPosX", "DPosY", "PosX", "PosY",
                           "DVelX", "DVelY", "VelX", "VelY")]
    + ["CTUN.DAlt"]
)

#: Table II row "SINS": 14 inertial/absolute-reference log variables.
_SINS_KSVL = (
    [f"IMU.{f}" for f in ("GyrX", "GyrY", "GyrZ", "AccX", "AccY", "AccZ")]
    + [f"GPS.{f}" for f in ("Lat", "Lng", "Alt", "Spd", "GCrs", "VZ")]
    + ["BARO.Alt", "BARO.CRt"]
)

_KSVL_BY_KIND = {"PID": _PID_KSVL, "Sqrt": _SQRT_KSVL, "SINS": _SINS_KSVL}

#: Intermediate variables added to each experiment's ESVL: the memory-bound
#: variables of the controller functions of that kind.
_INTERMEDIATES_BY_KIND = {
    "PID": [
        f"{pid}.{var}"
        for pid in ("PIDR", "PIDP", "PIDY", "PIDA")
        for var in ("KP", "KI", "KD", "FF", "DT", "INTEG", "INPUT", "DERIV", "SCALER")
    ],
    "Sqrt": [
        f"PSC_{axis}_POS.{var}"
        for axis in ("X", "Y", "Z")
        for var in ("P", "ERR", "OUT", "LIM")
    ],
    "SINS": [
        f"SINS.{var}"
        for var in (
            "VERR_N", "VERR_E", "VERR_D", "PERR_N", "PERR_E", "PERR_D",
            "KVEL", "KPOS", "KBARO", "ACC_N", "ACC_E", "ACC_D",
            "DV_N", "DV_E", "DV_D", "DP_N", "DP_E", "DP_D", "GRAV",
        )
    ],
}

#: The 24-variable roll-control ESVL of Fig. 5 (column identifiers).
ROLL_ESVL_COLUMNS = (
    [f"IMU.{f}" for f in ("AccX", "AccY", "AccZ", "GyrX", "GyrY", "GyrZ")]
    + [f"EKF1.{f}" for f in ("PN", "PE", "PD", "VN", "VE", "VD",
                             "dPD", "GX", "GY", "GZ")]
    + ["ATT.DesR", "ATT.R", "ATT.IR", "ATT.IRErr", "ATT.tv"]
    + ["PIDR.INPUT", "PIDR.DERIV", "PIDR.INTEG"]
)

#: Display labels matching the paper's Fig. 5 axis ticks.
ROLL_DISPLAY_NAMES = {
    "IMU.AccX": "AccX", "IMU.AccY": "AccY", "IMU.AccZ": "AccZ",
    "IMU.GyrX": "GyrX", "IMU.GyrY": "GyrY", "IMU.GyrZ": "GyrZ",
    "EKF1.PN": "PN", "EKF1.PE": "PE", "EKF1.PD": "PD",
    "EKF1.VN": "VN", "EKF1.VE": "VE", "EKF1.VD": "VD",
    "EKF1.dPD": "dPD", "EKF1.GX": "GX", "EKF1.GY": "GY", "EKF1.GZ": "GZ",
    "ATT.DesR": "DesR", "ATT.R": "Roll", "ATT.IR": "IR",
    "ATT.IRErr": "IRErr", "ATT.tv": "tv",
    "PIDR.INPUT": "INPUT", "PIDR.DERIV": "DERIV", "PIDR.INTEG": "INTEG",
}


def ksvl_all() -> list[str]:
    """Every available log variable as ``MSG.Field`` (the 342-entry KSVL)."""
    return [
        f"{name}.{field}"
        for name, definition in sorted(LOG_MESSAGE_DEFS.items())
        for field in definition.fields
    ]


def ksvl_for_controller(kind: str) -> list[str]:
    """The Table II KSVL for a controller-function kind."""
    try:
        return list(_KSVL_BY_KIND[kind])
    except KeyError:
        raise AnalysisError(
            f"unknown controller kind '{kind}' (expected PID, Sqrt or SINS)"
        ) from None


def intermediates_for_controller(kind: str) -> list[str]:
    """The traced intermediate variables added to the ESVL for ``kind``."""
    try:
        return list(_INTERMEDIATES_BY_KIND[kind])
    except KeyError:
        raise AnalysisError(
            f"unknown controller kind '{kind}' (expected PID, Sqrt or SINS)"
        ) from None
