"""Profile collector: benign missions → aligned ESVL dataset.

Implements the paper's profiling campaign: "We log the dataset at a
frequency of 16 Hz for the ESVL in 5 benign missions and each of them takes
about 40 to 70 seconds to complete, as a result collecting over 3000 value
vectors" (Section V-B).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import AnalysisError
from repro.firmware.mission import Mission, MissionStatus, line_mission, square_mission
from repro.firmware.vehicle import Vehicle
from repro.profiling.ksvl import intermediates_for_controller, ksvl_for_controller
from repro.profiling.tracer import VariableTracer
from repro.sim.config import SimConfig
from repro.utils.timeseries import TraceTable

__all__ = ["ProfileDataset", "ProfileCollector", "default_profile_missions"]


@dataclass
class ProfileDataset:
    """The aligned ESVL time-series dataset from one profiling campaign."""

    table: TraceTable
    ksvl_columns: list[str]
    intermediate_columns: list[str]
    missions_flown: int = 0
    mission_durations: list[float] = field(default_factory=list)

    @property
    def esvl_columns(self) -> list[str]:
        """All ESVL columns (KSVL + traced intermediates)."""
        return list(self.table.columns)

    @property
    def num_samples(self) -> int:
        """Number of aligned value vectors collected."""
        return len(self.table)


def default_profile_missions() -> list[Mission]:
    """Five benign missions of 40–70 s, as in the paper's campaign."""
    return [
        square_mission(side=35.0, altitude=10.0),
        square_mission(side=45.0, altitude=12.0),
        line_mission(length=55.0, altitude=10.0, legs=2),
        line_mission(length=45.0, altitude=8.0, legs=2),
        square_mission(side=40.0, altitude=15.0),
    ]


class ProfileCollector:
    """Runs benign missions and assembles the ESVL dataset.

    Parameters
    ----------
    controller_kind:
        Which Table II experiment to profile ("PID", "Sqrt" or "SINS").
    vehicle_factory:
        Callable creating a fresh vehicle per mission; defaults to an
        IRIS+ with a per-mission seed.
    """

    def __init__(
        self,
        controller_kind: str = "PID",
        vehicle_factory: Callable[[int], Vehicle] | None = None,
        extra_columns: list[str] | None = None,
        ksvl_columns: list[str] | None = None,
        intermediate_columns: list[str] | None = None,
    ):
        self.controller_kind = controller_kind
        self.ksvl = (
            list(ksvl_columns) if ksvl_columns is not None
            else ksvl_for_controller(controller_kind)
        )
        self.intermediates = (
            list(intermediate_columns) if intermediate_columns is not None
            else intermediates_for_controller(controller_kind)
        )
        if extra_columns:
            self.intermediates = self.intermediates + [
                c for c in extra_columns if c not in self.intermediates
            ]
        self._vehicle_factory = vehicle_factory or self._default_factory

    @staticmethod
    def _default_factory(seed: int) -> Vehicle:
        return Vehicle(SimConfig(seed=seed, wind_gust_std=0.4))

    def collect(
        self,
        missions: list[Mission] | None = None,
        timeout_per_mission: float = 150.0,
        require_complete: bool = True,
    ) -> ProfileDataset:
        """Fly every mission and return the aligned ESVL dataset.

        With ``require_complete=False`` an incomplete mission (a crash or
        timeout under injected faults) contributes whatever telemetry it
        produced instead of raising — the robustness sweep profiles
        degraded testbeds on purpose.
        """
        missions = missions if missions is not None else default_profile_missions()
        if not missions:
            raise AnalysisError("profiling needs at least one mission")
        columns = self.ksvl + self.intermediates
        merged = TraceTable(columns)
        durations: list[float] = []
        for index, mission in enumerate(missions):
            vehicle = self._vehicle_factory(index + 1)
            with VariableTracer(vehicle, self.intermediates) as tracer:
                status = vehicle.fly_mission(
                    mission, timeout=timeout_per_mission
                )
            if status is not MissionStatus.COMPLETE and require_complete:
                raise AnalysisError(
                    f"benign profiling mission {index} did not complete "
                    f"(status={status.name}, crashed={vehicle.sim.vehicle.crashed})"
                )
            durations.append(vehicle.sim.time)
            log_table = vehicle.logger.to_trace_table(self.ksvl)
            n = min(len(log_table), len(tracer.table))
            log_cols = {col: log_table.column(col) for col in self.ksvl}
            traced_cols = {
                col: tracer.table.column(col) for col in self.intermediates
            }
            times = log_table.times
            for row_idx in range(n):
                row = {col: values[row_idx] for col, values in log_cols.items()}
                row.update(
                    {col: values[row_idx] for col, values in traced_cols.items()}
                )
                merged.append_row(float(times[row_idx]), row)
        return ProfileDataset(
            table=merged,
            ksvl_columns=list(self.ksvl),
            intermediate_columns=list(self.intermediates),
            missions_flown=len(missions),
            mission_durations=durations,
        )
