"""Semantics-free controller-function identification from access patterns.

The paper builds its ESVL using DISPATCH-style techniques [13] that locate
controller functions in firmware *without semantic disassembly*. This
module reproduces that flavour of analysis over the simulated memory map:
it records which addresses are written in each control cycle and groups
addresses into candidate "functions" purely from their access behaviour —
write periodicity and phase co-occurrence — with no use of variable names.

The result can be checked against the ground-truth region map: addresses
written together every cycle at the stabilizer rate cluster into the
rate-PID group, navigation-rate addresses into the navigation group, and
constants (never rewritten) are excluded — exactly the pruning Fig. 3
applies to v1(KP)..v3(KD).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import AnalysisError
from repro.firmware.vehicle import Vehicle

__all__ = ["AccessTrace", "AddressCluster", "MemoryAccessTracer",
           "identify_functions_from_access"]


@dataclass
class AccessTrace:
    """Per-address write activity over the traced cycles."""

    addresses: list[int]
    #: (n_cycles, n_addresses) boolean matrix: address changed this cycle.
    activity: np.ndarray

    @property
    def num_cycles(self) -> int:
        """Number of traced control cycles."""
        return self.activity.shape[0]

    def write_rate(self) -> np.ndarray:
        """Fraction of cycles in which each address changed."""
        if self.num_cycles == 0:
            return np.zeros(len(self.addresses))
        return self.activity.mean(axis=0)


@dataclass
class AddressCluster:
    """A candidate controller function: co-active addresses."""

    addresses: list[int] = field(default_factory=list)
    write_rate: float = 0.0


class MemoryAccessTracer:
    """Records per-cycle value changes of every bound address.

    A value change between consecutive cycles is the observable proxy for
    a memory write (the instrumentation a Valgrind-style tracer provides).
    """

    def __init__(self, vehicle: Vehicle):
        self.vehicle = vehicle
        self.bindings = vehicle.memory.variables()
        if not self.bindings:
            raise AnalysisError("memory map has no bound variables to trace")
        self._last: np.ndarray | None = None
        self._rows: list[np.ndarray] = []
        vehicle.post_step_hooks.append(self._on_step)

    def detach(self) -> None:
        """Stop tracing."""
        if self._on_step in self.vehicle.post_step_hooks:
            self.vehicle.post_step_hooks.remove(self._on_step)

    def _snapshot(self) -> np.ndarray:
        return np.array([binding.read() for binding in self.bindings])

    def _on_step(self, vehicle: Vehicle) -> None:
        current = self._snapshot()
        if self._last is not None:
            self._rows.append(current != self._last)
        self._last = current

    def trace(self) -> AccessTrace:
        """The collected access trace."""
        activity = (
            np.vstack(self._rows) if self._rows
            else np.zeros((0, len(self.bindings)), dtype=bool)
        )
        return AccessTrace(
            addresses=[binding.address for binding in self.bindings],
            activity=activity,
        )


def identify_functions_from_access(
    trace: AccessTrace,
    min_write_rate: float = 0.02,
    cooccurrence_threshold: float = 0.9,
) -> list[AddressCluster]:
    """Group addresses into candidate controller functions.

    Two active addresses belong to the same candidate function when their
    per-cycle activity patterns agree in at least
    ``cooccurrence_threshold`` of cycles (they are written by the same
    loop). Addresses below ``min_write_rate`` (constants, rarely-updated
    configuration) are excluded — the v1..v3 pruning.
    """
    if trace.num_cycles < 10:
        raise AnalysisError("need at least 10 traced cycles")
    rates = trace.write_rate()
    active = [i for i, rate in enumerate(rates) if rate >= min_write_rate]
    clusters: list[list[int]] = []
    for i in active:
        placed = False
        for cluster in clusters:
            j = cluster[0]
            agreement = float(
                np.mean(trace.activity[:, i] == trace.activity[:, j])
            )
            if agreement >= cooccurrence_threshold:
                cluster.append(i)
                placed = True
                break
        if not placed:
            clusters.append([i])
    return [
        AddressCluster(
            addresses=[trace.addresses[i] for i in cluster],
            write_rate=float(np.mean([rates[i] for i in cluster])),
        )
        for cluster in clusters
    ]
