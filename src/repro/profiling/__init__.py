"""RAV profiling: KSVL extraction, variable tracing, ESVL dataset collection."""

from repro.profiling.access_patterns import (
    AccessTrace,
    AddressCluster,
    MemoryAccessTracer,
    identify_functions_from_access,
)
from repro.profiling.collector import (
    ProfileCollector,
    ProfileDataset,
    default_profile_missions,
)
from repro.profiling.ksvl import (
    ROLL_DISPLAY_NAMES,
    ROLL_ESVL_COLUMNS,
    intermediates_for_controller,
    ksvl_all,
    ksvl_for_controller,
)
from repro.profiling.tracer import VariableTracer, identify_controller_functions

__all__ = [
    "ProfileCollector",
    "ProfileDataset",
    "ROLL_DISPLAY_NAMES",
    "ROLL_ESVL_COLUMNS",
    "VariableTracer",
    "default_profile_missions",
    "identify_controller_functions",
    "intermediates_for_controller",
    "ksvl_all",
    "ksvl_for_controller",
]
