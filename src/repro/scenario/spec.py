"""Declarative scenario specs: everything one flight campaign needs.

A :class:`Scenario` bundles the whole cyber-physical test setup —
mission plan × airframe/physics × wind × terrain × battery ×
:class:`~repro.faults.FaultSchedule` × attack × defense ensemble — into
one frozen, JSON-serialisable value (``schemas/scenario.schema.json``
describes the on-disk form, modelled on the PR-4 fault-schedule schema).
Experiments *consume* scenarios through the builder methods
(:meth:`Scenario.build_vehicle`, :meth:`Scenario.build_fleet`,
:meth:`Scenario.make_mission`, …) instead of hardcoding their setups,
so the same named scenario drives fig9, the robustness matrix and the
``table scenarios`` fuzz campaign identically.

Byte-identity contract: for a scenario whose fields equal the implicit
defaults of the pre-DSL experiments, the builders construct *exactly*
the objects those experiments built inline — ``world=None`` (not an
empty :class:`World`), ``fault_schedule=None`` (not an empty schedule),
the default battery untouched — so refactored experiments stay
bit-identical to their hardcoded ancestors (pinned by the differential
golden tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.exceptions import ReproError
from repro.faults import FaultSchedule
from repro.sim.config import SimConfig, iris_plus_airframe, pixhawk4_airframe

__all__ = [
    "AIRFRAMES",
    "ATTACK_KINDS",
    "DEFENSE_KINDS",
    "MISSION_SHAPES",
    "AttackSpec",
    "BatterySpec",
    "DefenseSpec",
    "MissionSpec",
    "ObstacleSpec",
    "PhysicsSpec",
    "Scenario",
    "ScenarioError",
    "TerrainSpec",
    "load_scenarios",
    "parse_scenarios",
]

MISSION_SHAPES = ("line", "square")
AIRFRAMES = ("iris_plus", "pixhawk4")
ATTACK_KINDS = ("none", "gradual_roll")
DEFENSE_KINDS = ("control_invariants", "ekf_residual")

_AIRFRAME_FACTORIES = {
    "iris_plus": iris_plus_airframe,
    "pixhawk4": pixhawk4_airframe,
}

#: Default battery pack of :class:`~repro.sim.battery.Battery` — a
#: scenario battery differing from this swaps the pack after
#: construction and disqualifies the scenario from fleet vectorization
#: (the fleet's battery constants mirror the default pack).
_DEFAULT_CAPACITY_MAH = 5100.0
_DEFAULT_CELLS = 3


class ScenarioError(ReproError):
    """A scenario document was malformed (unknown shape, bad bounds...)."""


def _require_keys(data: dict, allowed: set[str], what: str) -> None:
    if not isinstance(data, dict):
        raise ScenarioError(f"{what} must be an object, got {data!r}")
    unknown = set(data) - allowed
    if unknown:
        raise ScenarioError(f"unknown {what} keys: {sorted(unknown)}")


def _triple(value, what: str) -> tuple[float, float, float]:
    try:
        x, y, z = (float(v) for v in value)
    except (TypeError, ValueError):
        raise ScenarioError(
            f"{what} must be a 3-vector of numbers, got {value!r}"
        ) from None
    return (x, y, z)


@dataclass(frozen=True)
class MissionSpec:
    """The flight plan: a line (back-and-forth) or square circuit.

    ``length`` is the leg length for ``line`` and the side for
    ``square``; ``legs`` only applies to ``line``.
    """

    shape: str = "line"
    length: float = 500.0
    altitude: float = 10.0
    legs: int = 1
    acceptance_radius: float = 1.0

    def __post_init__(self) -> None:
        if self.shape not in MISSION_SHAPES:
            raise ScenarioError(
                f"unknown mission shape '{self.shape}' "
                f"(choose from {', '.join(MISSION_SHAPES)})"
            )
        if self.length <= 0.0:
            raise ScenarioError(f"mission length must be > 0, got {self.length}")
        if self.altitude <= 0.0:
            raise ScenarioError(
                f"mission altitude must be > 0, got {self.altitude}"
            )
        if self.legs < 1:
            raise ScenarioError(f"mission legs must be >= 1, got {self.legs}")
        if self.acceptance_radius <= 0.0:
            raise ScenarioError(
                "mission acceptance_radius must be > 0, "
                f"got {self.acceptance_radius}"
            )

    def build(self):
        """The concrete :class:`~repro.firmware.mission.Mission`."""
        from repro.firmware.mission import line_mission, square_mission

        if self.shape == "square":
            return square_mission(
                side=self.length, altitude=self.altitude,
                acceptance_radius=self.acceptance_radius,
            )
        return line_mission(
            length=self.length, altitude=self.altitude, legs=self.legs,
            acceptance_radius=self.acceptance_radius,
        )

    def to_dict(self) -> dict:
        return {
            "shape": self.shape, "length": self.length,
            "altitude": self.altitude, "legs": self.legs,
            "acceptance_radius": self.acceptance_radius,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MissionSpec":
        _require_keys(
            data,
            {"shape", "length", "altitude", "legs", "acceptance_radius"},
            "mission",
        )
        return cls(
            shape=str(data.get("shape", "line")),
            length=float(data.get("length", 500.0)),
            altitude=float(data.get("altitude", 10.0)),
            legs=int(data.get("legs", 1)),
            acceptance_radius=float(data.get("acceptance_radius", 1.0)),
        )


@dataclass(frozen=True)
class PhysicsSpec:
    """Airframe selection plus the environment half of :class:`SimConfig`."""

    airframe: str = "iris_plus"
    physics_hz: float = 400.0
    wind_mean: tuple[float, float, float] = (0.0, 0.0, 0.0)
    wind_gust_std: float = 0.4
    wind_gust_tau: float = 2.0

    def __post_init__(self) -> None:
        if self.airframe not in AIRFRAMES:
            raise ScenarioError(
                f"unknown airframe '{self.airframe}' "
                f"(choose from {', '.join(AIRFRAMES)})"
            )
        if self.physics_hz <= 0.0:
            raise ScenarioError(
                f"physics_hz must be > 0, got {self.physics_hz}"
            )
        object.__setattr__(self, "wind_mean", _triple(self.wind_mean, "wind_mean"))
        if self.wind_gust_std < 0.0:
            raise ScenarioError(
                f"wind_gust_std must be >= 0, got {self.wind_gust_std}"
            )
        if self.wind_gust_tau <= 0.0:
            raise ScenarioError(
                f"wind_gust_tau must be > 0, got {self.wind_gust_tau}"
            )

    def build_airframe(self):
        """A fresh :class:`~repro.sim.config.AirframeConfig`."""
        return _AIRFRAME_FACTORIES[self.airframe]()

    def to_dict(self) -> dict:
        return {
            "airframe": self.airframe, "physics_hz": self.physics_hz,
            "wind_mean": list(self.wind_mean),
            "wind_gust_std": self.wind_gust_std,
            "wind_gust_tau": self.wind_gust_tau,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhysicsSpec":
        _require_keys(
            data,
            {"airframe", "physics_hz", "wind_mean", "wind_gust_std",
             "wind_gust_tau"},
            "physics",
        )
        return cls(
            airframe=str(data.get("airframe", "iris_plus")),
            physics_hz=float(data.get("physics_hz", 400.0)),
            wind_mean=_triple(data.get("wind_mean", (0.0, 0.0, 0.0)),
                              "wind_mean"),
            wind_gust_std=float(data.get("wind_gust_std", 0.4)),
            wind_gust_tau=float(data.get("wind_gust_tau", 2.0)),
        )


@dataclass(frozen=True)
class BatterySpec:
    """The LiPo pack; the default matches the stock 3S 5100 mAh pack."""

    capacity_mah: float = _DEFAULT_CAPACITY_MAH
    cells: int = _DEFAULT_CELLS

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0.0:
            raise ScenarioError(
                f"battery capacity_mah must be > 0, got {self.capacity_mah}"
            )
        if self.cells < 1:
            raise ScenarioError(f"battery cells must be >= 1, got {self.cells}")

    @property
    def is_default(self) -> bool:
        """True when this is the stock pack (leave the vehicle untouched)."""
        return (
            self.capacity_mah == _DEFAULT_CAPACITY_MAH
            and self.cells == _DEFAULT_CELLS
        )

    def build(self):
        """A fresh :class:`~repro.sim.battery.Battery` of this pack."""
        from repro.sim.battery import Battery

        return Battery(capacity_mah=self.capacity_mah, cells=self.cells)

    def to_dict(self) -> dict:
        return {"capacity_mah": self.capacity_mah, "cells": self.cells}

    @classmethod
    def from_dict(cls, data: dict) -> "BatterySpec":
        _require_keys(data, {"capacity_mah", "cells"}, "battery")
        return cls(
            capacity_mah=float(data.get("capacity_mah", _DEFAULT_CAPACITY_MAH)),
            cells=int(data.get("cells", _DEFAULT_CELLS)),
        )


@dataclass(frozen=True)
class ObstacleSpec:
    """One axis-aligned box obstacle in NED coordinates."""

    name: str
    min_corner: tuple[float, float, float]
    max_corner: tuple[float, float, float]

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("obstacle name must be non-empty")
        object.__setattr__(
            self, "min_corner", _triple(self.min_corner, "obstacle min_corner")
        )
        object.__setattr__(
            self, "max_corner", _triple(self.max_corner, "obstacle max_corner")
        )
        if not all(lo < hi for lo, hi in zip(self.min_corner, self.max_corner)):
            raise ScenarioError(
                f"obstacle '{self.name}' needs min_corner < max_corner "
                "on every axis"
            )

    def build(self):
        """A concrete :class:`~repro.sim.world.BoxObstacle`."""
        from repro.sim.world import BoxObstacle

        return BoxObstacle(
            name=self.name,
            min_corner=list(self.min_corner),
            max_corner=list(self.max_corner),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "min_corner": list(self.min_corner),
            "max_corner": list(self.max_corner),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObstacleSpec":
        _require_keys(data, {"name", "min_corner", "max_corner"}, "obstacle")
        for key in ("name", "min_corner", "max_corner"):
            if key not in data:
                raise ScenarioError(f"obstacle missing required key '{key}'")
        return cls(
            name=str(data["name"]),
            min_corner=_triple(data["min_corner"], "obstacle min_corner"),
            max_corner=_triple(data["max_corner"], "obstacle max_corner"),
        )


@dataclass(frozen=True)
class TerrainSpec:
    """Static scene: ground plane offset plus box obstacles."""

    ground_altitude: float = 0.0
    obstacles: tuple[ObstacleSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "obstacles", tuple(self.obstacles))

    @property
    def is_default(self) -> bool:
        """True when no explicit :class:`World` is needed at all."""
        return self.ground_altitude == 0.0 and not self.obstacles

    def build_world(self):
        """A :class:`~repro.sim.world.World`, or ``None`` for the default.

        Returning ``None`` (not an empty world) when nothing differs from
        the defaults keeps scenario-built vehicles bit-identical to
        vehicles built without a world argument.
        """
        if self.is_default:
            return None
        from repro.sim.world import World

        return World(
            ground_altitude=self.ground_altitude,
            obstacles=[o.build() for o in self.obstacles] or None,
        )

    def to_dict(self) -> dict:
        return {
            "ground_altitude": self.ground_altitude,
            "obstacles": [o.to_dict() for o in self.obstacles],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TerrainSpec":
        _require_keys(data, {"ground_altitude", "obstacles"}, "terrain")
        obstacles = data.get("obstacles", [])
        if not isinstance(obstacles, list):
            raise ScenarioError("terrain obstacles must be an array")
        return cls(
            ground_altitude=float(data.get("ground_altitude", 0.0)),
            obstacles=tuple(ObstacleSpec.from_dict(o) for o in obstacles),
        )


@dataclass(frozen=True)
class AttackSpec:
    """The adversary: ``none`` or the paper's gradual roll-creep attack."""

    kind: str = "none"
    rate_deg_s: float = 5.0
    start_time: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise ScenarioError(
                f"unknown attack kind '{self.kind}' "
                f"(choose from {', '.join(ATTACK_KINDS)})"
            )
        if self.rate_deg_s < 0.0:
            raise ScenarioError(
                f"attack rate_deg_s must be >= 0, got {self.rate_deg_s}"
            )
        if self.start_time < 0.0:
            raise ScenarioError(
                f"attack start_time must be >= 0, got {self.start_time}"
            )

    @property
    def is_none(self) -> bool:
        return self.kind == "none"

    def build(self):
        """A fresh attack instance, or ``None`` for a benign scenario."""
        if self.is_none:
            return None
        from repro.attacks.gradual import GradualRollAttack

        return GradualRollAttack(
            rate_deg_s=self.rate_deg_s, start_time=self.start_time
        )

    def to_dict(self) -> dict:
        if self.is_none:
            return {"kind": "none"}
        return {
            "kind": self.kind, "rate_deg_s": self.rate_deg_s,
            "start_time": self.start_time,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttackSpec":
        _require_keys(data, {"kind", "rate_deg_s", "start_time"}, "attack")
        return cls(
            kind=str(data.get("kind", "none")),
            rate_deg_s=float(data.get("rate_deg_s", 5.0)),
            start_time=float(data.get("start_time", 5.0)),
        )


@dataclass(frozen=True)
class DefenseSpec:
    """One monitor of the defense ensemble.

    ``threshold=None`` keeps the detector's own default alarm threshold.
    """

    kind: str = "control_invariants"
    threshold: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in DEFENSE_KINDS:
            raise ScenarioError(
                f"unknown defense kind '{self.kind}' "
                f"(choose from {', '.join(DEFENSE_KINDS)})"
            )
        if self.threshold is not None and self.threshold <= 0.0:
            raise ScenarioError(
                f"defense threshold must be > 0 (or null), got {self.threshold}"
            )

    def build(self, airframe):
        """A fresh detector for ``airframe`` (not yet attached)."""
        from repro.defenses import ControlInvariantsDetector, EKFResidualDetector

        if self.kind == "ekf_residual":
            if self.threshold is None:
                return EKFResidualDetector(airframe)
            return EKFResidualDetector(airframe, threshold=self.threshold)
        if self.threshold is None:
            return ControlInvariantsDetector(airframe)
        return ControlInvariantsDetector(airframe, threshold=self.threshold)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "threshold": self.threshold}

    @classmethod
    def from_dict(cls, data: dict) -> "DefenseSpec":
        _require_keys(data, {"kind", "threshold"}, "defense")
        threshold = data.get("threshold")
        return cls(
            kind=str(data.get("kind", "control_invariants")),
            threshold=None if threshold is None else float(threshold),
        )


@dataclass(frozen=True)
class Scenario:
    """One fully-specified cyber-physical test configuration."""

    name: str
    description: str = ""
    mission: MissionSpec = field(default_factory=MissionSpec)
    physics: PhysicsSpec = field(default_factory=PhysicsSpec)
    battery: BatterySpec = field(default_factory=BatterySpec)
    terrain: TerrainSpec = field(default_factory=TerrainSpec)
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    attack: AttackSpec = field(default_factory=AttackSpec)
    defenses: tuple[DefenseSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        object.__setattr__(self, "defenses", tuple(self.defenses))
        kinds = [d.kind for d in self.defenses]
        if len(kinds) != len(set(kinds)):
            raise ScenarioError(
                f"scenario '{self.name}' lists duplicate defense kinds"
            )

    # ---------------------------------------------------------------- build
    def sim_config(self, seed: int) -> SimConfig:
        """The :class:`SimConfig` of one scalar run at ``seed``."""
        return SimConfig(
            physics_hz=self.physics.physics_hz,
            ground_altitude=self.terrain.ground_altitude,
            seed=seed,
            wind_mean=self.physics.wind_mean,
            wind_gust_std=self.physics.wind_gust_std,
            wind_gust_tau=self.physics.wind_gust_tau,
            airframe=self.physics.build_airframe(),
        )

    def fleet_config(self) -> SimConfig:
        """The shared :class:`SimConfig` of a fleet (per-lane seeds win)."""
        return SimConfig(
            physics_hz=self.physics.physics_hz,
            ground_altitude=self.terrain.ground_altitude,
            wind_mean=self.physics.wind_mean,
            wind_gust_std=self.physics.wind_gust_std,
            wind_gust_tau=self.physics.wind_gust_tau,
            airframe=self.physics.build_airframe(),
        )

    def make_mission(self):
        """A fresh mission object (missions are stateful — one per run)."""
        return self.mission.build()

    def build_vehicle(self, seed: int):
        """A ready-to-fly :class:`~repro.firmware.vehicle.Vehicle`.

        Passes ``world=None`` / ``fault_schedule=None`` (not empty
        stand-ins) when the scenario carries no terrain/faults, so the
        construction is bit-identical to the pre-DSL inline setups.
        """
        from repro.firmware.vehicle import Vehicle

        vehicle = Vehicle(
            self.sim_config(seed),
            world=self.terrain.build_world(),
            fault_schedule=None if self.faults.empty else self.faults,
        )
        if not self.battery.is_default:
            vehicle.sim.vehicle.battery = self.battery.build()
        return vehicle

    def build_fleet(self, seeds):
        """A :class:`~repro.sim.vectorized.VectorizedFleet` over ``seeds``."""
        reasons = self.fallback_reasons()
        if reasons:
            raise ScenarioError(
                f"scenario '{self.name}' cannot vectorize: "
                + "; ".join(reasons)
            )
        from repro.sim.vectorized import VectorizedFleet

        return VectorizedFleet(self.fleet_config(), seeds=list(seeds))

    def build_defenses(self, airframe):
        """Fresh detector instances of the ensemble (not yet attached)."""
        return [d.build(airframe) for d in self.defenses]

    # ---------------------------------------------------------- vectorization
    def fallback_reasons(self) -> list[str]:
        """Why this scenario must run on the scalar engine (empty = none).

        Mirrors the :class:`VectorizedFleet` docstring: fault schedules,
        worlds with obstacles/terrain and non-default battery packs are
        scalar-only, and only the control-invariants detector is proven
        bit-identical on fleet lanes.
        """
        reasons = []
        if not self.faults.empty:
            reasons.append("fault schedule requires the scalar engine")
        if not self.terrain.is_default:
            reasons.append("terrain/obstacles require the scalar engine")
        if not self.battery.is_default:
            reasons.append("custom battery requires the scalar engine")
        for defense in self.defenses:
            if defense.kind != "control_invariants":
                reasons.append(
                    f"defense '{defense.kind}' requires the scalar engine"
                )
        return reasons

    @property
    def vectorizable(self) -> bool:
        """True when :meth:`build_fleet` is allowed for this scenario."""
        return not self.fallback_reasons()

    # ------------------------------------------------------------- serialise
    def to_dict(self) -> dict:
        """JSON-ready form matching ``schemas/scenario.schema.json``."""
        return {
            "name": self.name,
            "description": self.description,
            "mission": self.mission.to_dict(),
            "physics": self.physics.to_dict(),
            "battery": self.battery.to_dict(),
            "terrain": self.terrain.to_dict(),
            "faults": [s.to_dict() for s in self.faults],
            "attack": self.attack.to_dict(),
            "defenses": [d.to_dict() for d in self.defenses],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Parse one scenario object, rejecting unknown keys."""
        _require_keys(
            data,
            {"name", "description", "mission", "physics", "battery",
             "terrain", "faults", "attack", "defenses"},
            "scenario",
        )
        if "name" not in data:
            raise ScenarioError("scenario missing required key 'name'")
        faults = data.get("faults", [])
        if not isinstance(faults, list):
            raise ScenarioError("scenario faults must be an array")
        defenses = data.get("defenses", [])
        if not isinstance(defenses, list):
            raise ScenarioError("scenario defenses must be an array")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            mission=MissionSpec.from_dict(data.get("mission", {})),
            physics=PhysicsSpec.from_dict(data.get("physics", {})),
            battery=BatterySpec.from_dict(data.get("battery", {})),
            terrain=TerrainSpec.from_dict(data.get("terrain", {})),
            faults=FaultSchedule.from_dict({"version": 1, "faults": faults}),
            attack=AttackSpec.from_dict(data.get("attack", {})),
            defenses=tuple(DefenseSpec.from_dict(d) for d in defenses),
        )

    def with_(self, **changes) -> "Scenario":
        """A copy with top-level fields replaced (experiment knobs)."""
        return replace(self, **changes)


def _parse_document(data: dict, source: str) -> list[Scenario]:
    if not isinstance(data, dict):
        raise ScenarioError(f"{source}: scenario document must be a JSON object")
    if data.get("version", 1) != 1:
        raise ScenarioError(
            f"{source}: unsupported scenario document version "
            f"{data.get('version')!r}"
        )
    unknown = set(data) - {"version", "scenario", "scenarios"}
    if unknown:
        raise ScenarioError(
            f"{source}: unknown scenario document keys: {sorted(unknown)}"
        )
    has_one = "scenario" in data
    has_many = "scenarios" in data
    if has_one == has_many:
        raise ScenarioError(
            f"{source}: document needs exactly one of 'scenario'/'scenarios'"
        )
    if has_one:
        return [Scenario.from_dict(data["scenario"])]
    entries = data["scenarios"]
    if not isinstance(entries, list) or not entries:
        raise ScenarioError(f"{source}: 'scenarios' must be a non-empty array")
    scenarios = [Scenario.from_dict(entry) for entry in entries]
    names = [s.name for s in scenarios]
    if len(names) != len(set(names)):
        raise ScenarioError(f"{source}: duplicate scenario names")
    return scenarios


def parse_scenarios(text: str) -> list[Scenario]:
    """Parse scenario-document JSON *text* (not a file path)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"scenario JSON is invalid: {exc}") from None
    return _parse_document(data, "<scenarios>")


def load_scenarios(path: str | Path) -> list[Scenario]:
    """Load a scenario document (single ``scenario`` or a ``scenarios`` sweep)."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise ScenarioError(f"scenario file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(
            f"scenario file '{path}' is not valid JSON: {exc}"
        ) from None
    return _parse_document(data, str(path))
