"""Named scenario library covering the paper's experiments.

Every inline setup the experiments used to hardcode now has a named,
reusable :class:`~repro.scenario.Scenario` here — fig9 and the
robustness matrix *consume* these (pinned byte-identical to their
pre-DSL outputs by the differential golden tests), and ``table
scenarios`` sweeps any subset of the library through the scenario ×
attack × defense cube. Scenarios past the first five extend the cube
beyond what the paper ran: alternate airframe, storm wind, degraded
sensors, cluttered terrain, a small battery and a contested C2 link.
"""

from __future__ import annotations

from repro.faults import FaultSchedule, FaultSpec
from repro.scenario.spec import (
    AttackSpec,
    BatterySpec,
    DefenseSpec,
    MissionSpec,
    ObstacleSpec,
    PhysicsSpec,
    Scenario,
    ScenarioError,
    TerrainSpec,
)

__all__ = ["SCENARIOS", "get_scenario", "scenario_names"]

#: The paper's monitored cruise: the Fig. 6/9 line mission under gusty
#: wind, watched by the control-invariants detector at its stock
#: threshold. fig9 itself re-derives the threshold sweep from this
#: scenario's vehicle/mission/attack builders.
_FIG9_MISSION = MissionSpec(shape="line", length=500.0, altitude=10.0, legs=1)
_FIG9_PHYSICS = PhysicsSpec(wind_gust_std=0.4)
_CI = (DefenseSpec(kind="control_invariants"),)

SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    if scenario.name in SCENARIOS:
        raise ScenarioError(f"duplicate library scenario '{scenario.name}'")
    SCENARIOS[scenario.name] = scenario
    return scenario


_register(Scenario(
    name="fig9-cruise",
    description="Benign Fig. 9 cruise: 500 m line at 10 m under 0.4 m/s "
                "gusts, CI detector watching.",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    defenses=_CI,
))

_register(Scenario(
    name="fig9-attack1",
    description="Fig. 9 Attack 1: aggressive 5 deg/s roll creep from t=5 s "
                "on the monitored cruise.",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    attack=AttackSpec(kind="gradual_roll", rate_deg_s=5.0, start_time=5.0),
    defenses=_CI,
))

_register(Scenario(
    name="fig9-attack2",
    description="Fig. 9 Attack 2: stealthy 0.25 deg/s roll creep that hides "
                "inside the benign error distribution.",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    attack=AttackSpec(kind="gradual_roll", rate_deg_s=0.25, start_time=5.0),
    defenses=_CI,
))

_register(Scenario(
    name="robustness-profile",
    description="Algorithm 1 profiling mission of the robustness matrix: "
                "two 45 m legs at 8 m under gusty wind.",
    mission=MissionSpec(shape="line", length=45.0, altitude=8.0, legs=2),
    physics=_FIG9_PHYSICS,
))

_register(Scenario(
    name="robustness-monitor",
    description="Detector half of the robustness matrix: the monitored "
                "cruise with the paper's 5 deg/s roll attack.",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    attack=AttackSpec(kind="gradual_roll", rate_deg_s=5.0, start_time=5.0),
    defenses=_CI,
))

_register(Scenario(
    name="square-patrol",
    description="Benign 40 m square patrol circuit — the profiling shape "
                "the paper flies for benign data collection.",
    mission=MissionSpec(shape="square", length=40.0, altitude=10.0),
    physics=_FIG9_PHYSICS,
    defenses=_CI,
))

_register(Scenario(
    name="pixhawk-line",
    description="The monitored cruise on the heavier Pixhawk 4 airframe.",
    mission=_FIG9_MISSION,
    physics=PhysicsSpec(airframe="pixhawk4", wind_gust_std=0.4),
    defenses=_CI,
))

_register(Scenario(
    name="high-wind",
    description="Storm cell: 2 m/s mean crosswind with 1.2 m/s gusts over "
                "the monitored cruise.",
    mission=_FIG9_MISSION,
    physics=PhysicsSpec(
        wind_mean=(2.0, 1.0, 0.0), wind_gust_std=1.2, wind_gust_tau=1.5,
    ),
    defenses=_CI,
))

_register(Scenario(
    name="degraded-gps",
    description="GPS glitching at half intensity from t=4 s while the 5 "
                "deg/s attack runs — scalar-only (fault schedule).",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    faults=FaultSchedule((
        FaultSpec(kind="gps_glitch", start=4.0, intensity=0.5),
    )),
    attack=AttackSpec(kind="gradual_roll", rate_deg_s=5.0, start_time=5.0),
    defenses=_CI,
))

_register(Scenario(
    name="obstacle-corridor",
    description="Two box obstacles pinch the cruise corridor — "
                "scalar-only (world geometry).",
    mission=MissionSpec(shape="line", length=120.0, altitude=10.0, legs=1),
    physics=_FIG9_PHYSICS,
    terrain=TerrainSpec(obstacles=(
        ObstacleSpec(
            name="tower-east",
            min_corner=(40.0, 4.0, -30.0), max_corner=(48.0, 12.0, 0.0),
        ),
        ObstacleSpec(
            name="tower-west",
            min_corner=(70.0, -12.0, -30.0), max_corner=(78.0, -4.0, 0.0),
        ),
    )),
    defenses=_CI,
))

_register(Scenario(
    name="low-battery",
    description="Undersized 1200 mAh pack on the monitored cruise — "
                "scalar-only (non-default battery).",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    battery=BatterySpec(capacity_mah=1200.0, cells=3),
    defenses=_CI,
))

_register(Scenario(
    name="link-contested",
    description="C2 link under 60% loss and delay jitter while the EKF "
                "residual monitor watches — scalar-only.",
    mission=_FIG9_MISSION,
    physics=_FIG9_PHYSICS,
    faults=FaultSchedule((
        FaultSpec(kind="link_loss", start=2.0, intensity=0.6),
        FaultSpec(kind="link_delay", start=2.0, intensity=0.5),
    )),
    defenses=(
        DefenseSpec(kind="control_invariants"),
        DefenseSpec(kind="ekf_residual"),
    ),
))


def scenario_names() -> tuple[str, ...]:
    """All library scenario names, in registration order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """The library scenario called ``name``."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario '{name}' "
            f"(choose from {', '.join(SCENARIOS)})"
        ) from None
