"""Seed-deterministic scenario fuzzing over a bounded sample space.

:class:`ScenarioSampler` draws :class:`~repro.scenario.Scenario` values
from a :class:`SampleSpace` of per-dimension bounds. Every dimension of
every sample has its own RNG stream keyed ``(seed, dimension index,
sample index, salt)`` — the same discipline as
:meth:`~repro.faults.FaultSchedule.rng_for` — which buys three
guarantees the property suite pins:

* resampling with the same seed is bit-identical;
* sample ``i`` never depends on how many samples were requested
  (``sample(8)[:4] == sample(4)``);
* widening one dimension's bounds never shifts another dimension's
  draws (each stream is consumed by exactly one dimension).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults import FaultSchedule, FaultSpec
from repro.faults.schedule import FAULT_KINDS
from repro.scenario.spec import (
    AttackSpec,
    BatterySpec,
    DefenseSpec,
    MissionSpec,
    ObstacleSpec,
    PhysicsSpec,
    Scenario,
    ScenarioError,
    TerrainSpec,
)

__all__ = [
    "DIMENSIONS",
    "SAMPLE_SPACES",
    "SampleSpace",
    "ScenarioSampler",
    "get_space",
]

#: Stream salt — distinct from the fault-schedule salt (0x5FA) so a
#: sampled schedule never aliases an injector stream.
_SALT = 0x5CE

#: Dimension index → name; the index keys the RNG stream, so the order
#: here is part of the determinism contract (append, never reorder).
DIMENSIONS = (
    "mission",    # 0
    "physics",    # 1
    "wind",       # 2
    "terrain",    # 3
    "battery",    # 4
    "faults",     # 5
    "attack",     # 6
    "defenses",   # 7
)


@dataclass(frozen=True)
class SampleSpace:
    """Per-dimension bounds of the scenario fuzzer.

    ``*_prob`` knobs gate optional axes (obstacles, custom battery,
    attack); ``(lo, hi)`` tuples bound uniform draws. Setting a prob to
    0 or collapsing a range to one value narrows the space without
    disturbing any other dimension's stream.
    """

    mission_shapes: tuple[str, ...] = ("line", "square")
    mission_length: tuple[float, float] = (40.0, 500.0)
    mission_altitude: tuple[float, float] = (5.0, 15.0)
    mission_max_legs: int = 2
    airframes: tuple[str, ...] = ("iris_plus", "pixhawk4")
    physics_hz: tuple[float, ...] = (400.0,)
    wind_mean_max: float = 2.0
    wind_gust_std: tuple[float, float] = (0.0, 1.2)
    obstacle_prob: float = 0.25
    max_obstacles: int = 2
    battery_prob: float = 0.25
    battery_capacity: tuple[float, float] = (1500.0, 5100.0)
    fault_kinds: tuple[str, ...] = FAULT_KINDS
    max_faults: int = 2
    fault_intensity: tuple[float, float] = (0.1, 1.0)
    attack_prob: float = 0.5
    attack_rate: tuple[float, float] = (0.25, 5.0)
    defense_kinds: tuple[str, ...] = ("control_invariants", "ekf_residual")
    defense_prob: float = 0.5

    def __post_init__(self) -> None:
        for name in ("mission_length", "mission_altitude", "wind_gust_std",
                     "battery_capacity", "fault_intensity", "attack_rate"):
            lo, hi = getattr(self, name)
            if not 0.0 <= lo <= hi:
                raise ScenarioError(
                    f"sample space {name} must satisfy 0 <= lo <= hi, "
                    f"got ({lo}, {hi})"
                )
        for name in ("obstacle_prob", "battery_prob", "attack_prob",
                     "defense_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ScenarioError(
                    f"sample space {name} must be a probability, got {p}"
                )
        if not self.mission_shapes or not self.airframes or not self.physics_hz:
            raise ScenarioError(
                "sample space choice axes must be non-empty"
            )


#: Named spaces the CLI exposes via ``--space``. ``tiny`` keeps flights
#: to seconds of sim time at 100 Hz — the CI smoke space.
SAMPLE_SPACES: dict[str, SampleSpace] = {
    "default": SampleSpace(),
    "tiny": SampleSpace(
        mission_shapes=("line",),
        mission_length=(6.0, 12.0),
        mission_altitude=(4.0, 8.0),
        mission_max_legs=1,
        airframes=("iris_plus",),
        physics_hz=(100.0,),
        wind_mean_max=0.5,
        wind_gust_std=(0.0, 0.5),
        obstacle_prob=0.0,
        battery_prob=0.0,
        fault_kinds=("gps_glitch", "imu_noise_burst"),
        max_faults=1,
        attack_prob=0.5,
        attack_rate=(1.0, 5.0),
        defense_kinds=("control_invariants",),
        defense_prob=1.0,
    ),
}


def get_space(name: str) -> SampleSpace:
    """The named sample space."""
    try:
        return SAMPLE_SPACES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown sample space '{name}' "
            f"(choose from {', '.join(SAMPLE_SPACES)})"
        ) from None


def _uniform(rng: np.random.Generator, bounds: tuple[float, float],
             digits: int = 3) -> float:
    lo, hi = bounds
    return round(float(rng.uniform(lo, hi)), digits)


def _choice(rng: np.random.Generator, options: tuple) -> object:
    return options[int(rng.integers(0, len(options)))]


@dataclass(frozen=True)
class ScenarioSampler:
    """Draws schema-valid scenarios from ``space``, keyed by ``seed``."""

    space: SampleSpace = field(default_factory=SampleSpace)
    seed: int = 0

    def _rng(self, dimension: int, index: int) -> np.random.Generator:
        """The stream of one (dimension, sample) pair."""
        return np.random.default_rng([self.seed, dimension, index, _SALT])

    def sample(self, n: int) -> list[Scenario]:
        """The first ``n`` scenarios of this sampler's stream."""
        if n < 1:
            raise ScenarioError(f"sample count must be >= 1, got {n}")
        return [self.sample_one(i) for i in range(n)]

    def sample_one(self, index: int) -> Scenario:
        """Sample ``index`` of the stream (independent of any other)."""
        space = self.space
        rng = self._rng(0, index)
        mission = MissionSpec(
            shape=str(_choice(rng, space.mission_shapes)),
            length=_uniform(rng, space.mission_length),
            altitude=_uniform(rng, space.mission_altitude),
            legs=int(rng.integers(1, space.mission_max_legs + 1)),
        )
        rng = self._rng(1, index)
        airframe = str(_choice(rng, space.airframes))
        physics_hz = float(_choice(rng, space.physics_hz))
        rng = self._rng(2, index)
        wind_mean = tuple(
            round(float(v), 3)
            for v in rng.uniform(-space.wind_mean_max, space.wind_mean_max,
                                 size=2)
        ) + (0.0,)
        physics = PhysicsSpec(
            airframe=airframe,
            physics_hz=physics_hz,
            wind_mean=wind_mean,
            wind_gust_std=_uniform(rng, space.wind_gust_std),
        )
        rng = self._rng(3, index)
        obstacles = []
        if rng.random() < space.obstacle_prob and space.max_obstacles:
            for k in range(int(rng.integers(1, space.max_obstacles + 1))):
                # Keep the launch point clear: boxes start >= 20 m north.
                north = _uniform(rng, (20.0, 80.0))
                east = _uniform(rng, (-10.0, 10.0))
                size = _uniform(rng, (4.0, 12.0))
                obstacles.append(ObstacleSpec(
                    name=f"box-{k}",
                    min_corner=(north, east, -40.0),
                    max_corner=(round(north + size, 3), round(east + size, 3),
                                0.0),
                ))
        terrain = TerrainSpec(obstacles=tuple(obstacles))
        rng = self._rng(4, index)
        battery = BatterySpec()
        if rng.random() < space.battery_prob:
            battery = BatterySpec(
                capacity_mah=_uniform(rng, space.battery_capacity),
                cells=int(_choice(rng, (3, 4))),
            )
        rng = self._rng(5, index)
        specs = []
        for _ in range(int(rng.integers(0, space.max_faults + 1))):
            specs.append(FaultSpec(
                kind=str(_choice(rng, space.fault_kinds)),
                start=_uniform(rng, (2.0, 8.0), digits=2),
                duration=_uniform(rng, (4.0, 12.0), digits=2),
                intensity=_uniform(rng, space.fault_intensity),
            ))
        faults = FaultSchedule(tuple(specs))
        rng = self._rng(6, index)
        attack = AttackSpec(kind="none")
        if rng.random() < space.attack_prob:
            attack = AttackSpec(
                kind="gradual_roll",
                rate_deg_s=_uniform(rng, space.attack_rate),
                start_time=_uniform(rng, (2.0, 8.0), digits=2),
            )
        rng = self._rng(7, index)
        defenses = tuple(
            DefenseSpec(kind=kind)
            for kind in space.defense_kinds
            if rng.random() < space.defense_prob
        )
        return Scenario(
            name=f"sampled-{self.seed}-{index}",
            description=f"fuzzer draw {index} of seed {self.seed}",
            mission=mission,
            physics=physics,
            battery=battery,
            terrain=terrain,
            faults=faults,
            attack=attack,
            defenses=defenses,
        )
