"""Declarative scenario DSL: specs, named library and the fuzzer.

``repro.scenario`` turns "which mission, which airframe, which wind,
which faults, which attack, which defenses" into one schema-validated
value that every experiment can consume — see
``schemas/scenario.schema.json`` for the on-disk form,
:mod:`repro.scenario.library` for the named scenarios the paper's
experiments run on, and :mod:`repro.scenario.sampler` for the
seed-deterministic fuzzer behind ``table scenarios --sample N``.
"""

from repro.scenario.library import SCENARIOS, get_scenario, scenario_names
from repro.scenario.sampler import (
    DIMENSIONS,
    SAMPLE_SPACES,
    SampleSpace,
    ScenarioSampler,
    get_space,
)
from repro.scenario.spec import (
    AIRFRAMES,
    ATTACK_KINDS,
    DEFENSE_KINDS,
    MISSION_SHAPES,
    AttackSpec,
    BatterySpec,
    DefenseSpec,
    MissionSpec,
    ObstacleSpec,
    PhysicsSpec,
    Scenario,
    ScenarioError,
    TerrainSpec,
    load_scenarios,
    parse_scenarios,
)

__all__ = [
    "AIRFRAMES",
    "ATTACK_KINDS",
    "DEFENSE_KINDS",
    "DIMENSIONS",
    "MISSION_SHAPES",
    "SAMPLE_SPACES",
    "SCENARIOS",
    "AttackSpec",
    "BatterySpec",
    "DefenseSpec",
    "MissionSpec",
    "ObstacleSpec",
    "PhysicsSpec",
    "SampleSpace",
    "Scenario",
    "ScenarioError",
    "ScenarioSampler",
    "TerrainSpec",
    "get_scenario",
    "get_space",
    "load_scenarios",
    "parse_scenarios",
    "scenario_names",
]
