"""Deep deterministic policy gradient (Lillicrap et al. — the paper's [36]).

The continuous-control policy-gradient method the paper's experiment setup
cites. Actor and critic are numpy MLPs; exploration is Ornstein–Uhlenbeck
noise; target networks are Polyak-averaged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_registry
from repro.rl.networks import MLP, AdamOptimizer
from repro.rl.replay import ReplayBuffer
from repro.utils.rng import make_rng

__all__ = ["DdpgConfig", "DdpgAgent"]


@dataclass
class DdpgConfig:
    """Hyper-parameters for the DDPG agent."""

    hidden: int = 64
    actor_lr: float = 1e-3
    critic_lr: float = 3e-3
    gamma: float = 0.98
    tau: float = 0.01
    batch_size: int = 64
    buffer_capacity: int = 100_000
    warmup_transitions: int = 200
    ou_theta: float = 0.15
    ou_sigma: float = 0.3
    noise_decay: float = 0.999
    seed: int = 0


class DdpgAgent:
    """Actor-critic agent over one continuous action dimension."""

    def __init__(self, obs_dim: int, action_limit: float,
                 config: DdpgConfig | None = None):
        self.config = config or DdpgConfig()
        c = self.config
        self.obs_dim = obs_dim
        self.action_limit = action_limit
        self.actor = MLP([obs_dim, c.hidden, c.hidden, 1],
                         output_activation="tanh", seed=c.seed, out_scale=0.1)
        self.critic = MLP([obs_dim + 1, c.hidden, c.hidden, 1], seed=c.seed + 1)
        self.actor_target = self.actor.clone()
        self.critic_target = self.critic.clone()
        self._actor_opt = AdamOptimizer(self.actor.parameters(), lr=c.actor_lr)
        self._critic_opt = AdamOptimizer(self.critic.parameters(), lr=c.critic_lr)
        self.buffer = ReplayBuffer(c.buffer_capacity, obs_dim, 1, seed=c.seed + 2)
        self._rng = make_rng(c.seed + 3)
        self._noise = 0.0
        self._noise_scale = 1.0

    # ------------------------------------------------------------------ #
    def act(self, obs: np.ndarray, deterministic: bool = False) -> np.ndarray:
        """Policy action with OU exploration noise (in env action units)."""
        c = self.config
        raw = float(self.actor.forward(np.asarray(obs, dtype=float))[0])
        if not deterministic:
            self._noise += (
                -c.ou_theta * self._noise
                + c.ou_sigma * self._rng.standard_normal()
            )
            raw = raw + self._noise_scale * self._noise
        return np.array([np.clip(raw, -1.0, 1.0) * self.action_limit])

    def observe(self, obs, action, reward: float, next_obs, done: bool) -> None:
        """Store one transition (actions arrive in env units)."""
        scaled = np.asarray(action, dtype=float) / self.action_limit
        self.buffer.add(obs, scaled, reward, next_obs, done)

    def end_episode(self) -> None:
        """Reset exploration noise and decay its scale."""
        self._noise = 0.0
        self._noise_scale *= self.config.noise_decay

    # ------------------------------------------------------------------ #
    def update(self) -> dict[str, float] | None:
        """One gradient step on a replay minibatch (None while warming up)."""
        c = self.config
        if len(self.buffer) < max(c.batch_size, c.warmup_transitions):
            return None
        get_registry().counter("rl.policy_updates", algo="ddpg").inc()
        obs, act, rew, next_obs, done = self.buffer.sample(c.batch_size)

        # Critic target: r + gamma * (1-done) * Q'(s', pi'(s')).
        next_act = self.actor_target.forward(next_obs)
        q_next = self.critic_target.forward(
            np.hstack([next_obs, next_act])
        ).reshape(-1)
        target = rew + c.gamma * (1.0 - done) * q_next

        # Critic regression.
        q = self.critic.forward(np.hstack([obs, act]), cache=True).reshape(-1)
        td_error = q - target
        grad_q = (td_error.reshape(-1, 1)) / c.batch_size
        w_grads, b_grads, _ = self.critic.backward(grad_q)
        self._critic_opt.step(self._interleave(w_grads, b_grads))

        # Actor: ascend Q(s, pi(s)) — chain grad through the critic input.
        pi = self.actor.forward(obs, cache=True)
        self.critic.forward(np.hstack([obs, pi]), cache=True)
        ones = np.ones((c.batch_size, 1)) / c.batch_size
        _, _, grad_input = self.critic.backward(-ones)  # maximise Q
        grad_action = grad_input[:, self.obs_dim:]
        w_grads, b_grads, _ = self.actor.backward(grad_action)
        self._actor_opt.step(self._interleave(w_grads, b_grads))

        # Polyak target updates.
        self.actor_target.copy_from(self.actor, tau=c.tau)
        self.critic_target.copy_from(self.critic, tau=c.tau)
        return {
            "critic_loss": float(np.mean(td_error**2)),
            "mean_q": float(q.mean()),
        }

    @staticmethod
    def _interleave(w_grads, b_grads):
        grads = []
        for w, b in zip(w_grads, b_grads):
            grads.extend((w, b))
        return grads
