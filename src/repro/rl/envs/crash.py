"""Controlled-failure environment: steer into a forbidden zone (Eq. 5, Fig. 11).

The scene contains a forbidden navigation zone (an obstacle box) beside
the mission path. The agent is rewarded ``+Δd`` for closing the distance
to the zone, ``−Δd`` for retreating, a large terminal bonus on contact
(the crash goal) and the detector penalty on an alarm.
"""

from __future__ import annotations

import numpy as np

from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.rl.env import EnvConfig, RavEnvBase
from repro.rl.spaces import Box
from repro.sim.config import SimConfig
from repro.sim.world import BoxObstacle, World

__all__ = ["ControlledCrashEnv"]


class ControlledCrashEnv(RavEnvBase):
    """Steer the RAV into a forbidden zone via state-variable manipulation."""

    def __init__(
        self,
        config: EnvConfig | None = None,
        zone_offset_east: float = 14.0,
        zone_size: float = 8.0,
        zone_north_start: float = 35.0,
        zone_north_length: float = 40.0,
        altitude: float = 10.0,
        epsilon: float = 0.5,
        contact_bonus: float = 100.0,
    ):
        self.zone_offset_east = zone_offset_east
        self.zone_size = zone_size
        self.zone_north_start = zone_north_start
        self.zone_north_length = zone_north_length
        self.altitude = altitude
        self.epsilon = epsilon
        self.contact_bonus = contact_bonus
        self._last_distance = 0.0
        super().__init__(config)

    def _make_observation_space(self) -> Box:
        # [roll, roll_rate, integ, d_zone, delta_d, east_velocity]
        high = np.array([np.pi, 4 * np.pi, 1.0, 200.0, 10.0, 20.0])
        return Box(low=-high, high=high, seed=self.config.seed)

    def _build_zone(self) -> BoxObstacle:
        east = self.zone_offset_east
        half = self.zone_size / 2.0
        return BoxObstacle(
            name="forbidden-zone",
            min_corner=np.array([
                self.zone_north_start, east - half, -(self.altitude + half),
            ]),
            max_corner=np.array([
                self.zone_north_start + self.zone_north_length,
                east + half, -(self.altitude - half),
            ]),
        )

    def _setup_vehicle(self, seed: int) -> Vehicle:
        zone = self._build_zone()
        world = World(obstacles=[zone], forbidden_zones=[zone])
        vehicle = Vehicle(
            SimConfig(seed=seed, physics_hz=self.config.physics_hz),
            world=world,
            use_truth_state=True,
            estimation_enabled=False,
        )
        vehicle.mission = line_mission(length=300.0, altitude=self.altitude, legs=1)
        vehicle.takeoff(self.altitude)
        vehicle.set_mode(FlightMode.AUTO)
        vehicle.run(2.0)
        return vehicle

    def _zone_distance(self) -> float:
        return float(
            self.vehicle.world.nearest_forbidden_distance(
                self.vehicle.sim.vehicle.state.position
            )
        )

    def _post_reset(self) -> None:
        self._last_distance = self._zone_distance()

    def _observe(self) -> np.ndarray:
        state = self.vehicle.sim.vehicle.state
        roll, _, _ = state.euler
        d = self._zone_distance()
        return np.array([
            roll,
            float(state.omega_body[0]),
            float(self.manipulator.read()),
            d,
            d - self._last_distance,
            float(state.velocity[1]),
        ])

    def _reward(self) -> tuple[float, bool]:
        d = self._zone_distance()
        delta = abs(d - self._last_distance)
        if d <= self.epsilon:
            self._last_distance = d
            return self.contact_bonus, True  # reached the goal (crash)
        if d < self._last_distance:
            reward = +delta
        else:
            reward = -delta
        self._last_distance = d
        # Once the mission has carried the vehicle well past the zone's
        # north extent, no approach is possible anymore: end the episode
        # instead of accumulating meaningless negative reward.
        zone = self.vehicle.world.forbidden_zones[0]
        passed = (
            float(self.vehicle.sim.vehicle.state.position[0])
            > float(zone.max_corner[0]) + 10.0
        )
        return reward, passed
