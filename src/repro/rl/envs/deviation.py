"""Uncontrolled-failure environment: path deviation (paper Eq. 4, Fig. 10).

The RAV flies a straight path-following mission between waypoints A and B;
the agent manipulates ``PIDR.INTEG`` and is rewarded with ``+Δd`` whenever
the minimum distance ``d`` from the mission path grows (``−Δd``
otherwise), with a large negative terminal penalty if an in-loop detector
alarms.
"""

from __future__ import annotations

import numpy as np

from repro.firmware.mission import line_mission
from repro.firmware.modes import FlightMode
from repro.firmware.vehicle import Vehicle
from repro.rl.env import EnvConfig, RavEnvBase
from repro.rl.spaces import Box
from repro.sim.config import SimConfig

__all__ = ["PathDeviationEnv"]


class PathDeviationEnv(RavEnvBase):
    """Deviate the RAV from its mission path as far as possible."""

    def __init__(
        self,
        config: EnvConfig | None = None,
        mission_length: float = 400.0,
        altitude: float = 10.0,
        epsilon: float = 0.01,
    ):
        self.mission_length = mission_length
        self.altitude = altitude
        #: The paper's ε ("representing the radius of the drone").
        self.epsilon = epsilon
        self._last_distance = 0.0
        super().__init__(config)

    def _make_observation_space(self) -> Box:
        # [roll, roll_rate, integ, d, delta_d, cross_velocity]
        high = np.array([np.pi, 4 * np.pi, 1.0, 100.0, 10.0, 20.0])
        return Box(low=-high, high=high, seed=self.config.seed)

    def _setup_vehicle(self, seed: int) -> Vehicle:
        # Truth-state control with the estimation pipeline disabled: the
        # in-loop CI detector reads attitude/gyro through the same
        # truth path, so training episodes stay cheap.
        vehicle = Vehicle(
            SimConfig(seed=seed, physics_hz=self.config.physics_hz),
            use_truth_state=True,
            estimation_enabled=False,
        )
        vehicle.mission = line_mission(
            length=self.mission_length, altitude=self.altitude, legs=1
        )
        vehicle.takeoff(self.altitude)
        vehicle.set_mode(FlightMode.AUTO)
        # Fly a short stretch so the exploit starts between A and B.
        vehicle.run(2.0)
        return vehicle

    def _path_distance(self) -> float:
        return float(
            self.vehicle.mission.cross_track_distance(
                self.vehicle.sim.vehicle.state.position
            )
        )

    def _post_reset(self) -> None:
        self._last_distance = self._path_distance()

    def _observe(self) -> np.ndarray:
        state = self.vehicle.sim.vehicle.state
        roll, _, _ = state.euler
        d = self._path_distance()
        return np.array([
            roll,
            float(state.omega_body[0]),
            float(self.manipulator.read()),
            d,
            d - self._last_distance,
            float(state.velocity[1]),  # cross-track (east) velocity
        ])

    def _reward(self) -> tuple[float, bool]:
        d = self._path_distance()
        delta = abs(d - self._last_distance)
        if d > self._last_distance and d > self.epsilon:
            reward = +delta
        else:
            reward = -delta
        self._last_distance = d
        return reward, False
