"""Exploit-generation environments (uncontrolled and controlled failures)."""

from repro.rl.envs.crash import ControlledCrashEnv
from repro.rl.envs.deviation import PathDeviationEnv

__all__ = ["ControlledCrashEnv", "PathDeviationEnv"]
