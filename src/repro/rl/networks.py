"""Small multilayer perceptrons with manual backpropagation.

The RL agents (REINFORCE, DDPG) need differentiable function
approximators; with no deep-learning framework available offline, this
module provides a compact numpy MLP supporting forward passes, gradient
backpropagation and SGD/Adam updates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import RLError
from repro.utils.rng import make_rng

__all__ = ["MLP", "AdamOptimizer"]

_ACTIVATIONS = {
    "tanh": (np.tanh, lambda y: 1.0 - y * y),
    "relu": (lambda x: np.maximum(x, 0.0), lambda y: (y > 0.0).astype(float)),
    "linear": (lambda x: x, lambda y: np.ones_like(y)),
}


class MLP:
    """Fully connected network with per-layer activations.

    Weights are initialised with the Xavier/Glorot scheme; the final layer
    can be scaled down (``out_scale``) as DDPG does for its actor.
    """

    def __init__(
        self,
        sizes: list[int],
        hidden_activation: str = "tanh",
        output_activation: str = "linear",
        seed: int | None = 0,
        out_scale: float = 1.0,
    ):
        if len(sizes) < 2:
            raise RLError("MLP needs at least input and output sizes")
        if hidden_activation not in _ACTIVATIONS or output_activation not in _ACTIVATIONS:
            raise RLError("unknown activation")
        rng = make_rng(seed)
        self.sizes = list(sizes)
        self.activations = [hidden_activation] * (len(sizes) - 2) + [output_activation]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self.weights[-1] *= out_scale
        self._cache: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def forward(self, x: np.ndarray, cache: bool = False) -> np.ndarray:
        """Evaluate the network on a batch (n, d_in) or a single vector."""
        single = x.ndim == 1
        h = np.atleast_2d(np.asarray(x, dtype=float))
        layers = [h]
        for W, b, act in zip(self.weights, self.biases, self.activations):
            fn, _ = _ACTIVATIONS[act]
            h = fn(h @ W + b)
            layers.append(h)
        if cache:
            self._cache = layers
        return h[0] if single else h

    def backward(self, grad_output: np.ndarray):
        """Backpropagate d(loss)/d(output) from the last cached forward.

        Returns ``(weight_grads, bias_grads, grad_input)``.
        """
        if self._cache is None:
            raise RLError("backward() requires forward(..., cache=True) first")
        layers = self._cache
        grad = np.atleast_2d(np.asarray(grad_output, dtype=float))
        weight_grads = [np.zeros_like(W) for W in self.weights]
        bias_grads = [np.zeros_like(b) for b in self.biases]
        for i in reversed(range(len(self.weights))):
            _, dfn = _ACTIVATIONS[self.activations[i]]
            grad = grad * dfn(layers[i + 1])
            weight_grads[i] = layers[i].T @ grad
            bias_grads[i] = grad.sum(axis=0)
            grad = grad @ self.weights[i].T
        return weight_grads, bias_grads, grad

    # ------------------------------------------------------------------ #
    def parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (weights then biases, per layer)."""
        params: list[np.ndarray] = []
        for W, b in zip(self.weights, self.biases):
            params.extend((W, b))
        return params

    def copy_from(self, other: "MLP", tau: float = 1.0) -> None:
        """Polyak copy: ``self = tau * other + (1 - tau) * self``."""
        for mine, theirs in zip(self.parameters(), other.parameters()):
            mine *= 1.0 - tau
            mine += tau * theirs

    def clone(self) -> "MLP":
        """Deep copy with identical weights."""
        twin = MLP(self.sizes, seed=0)
        twin.activations = list(self.activations)
        twin.copy_from(self, tau=1.0)
        return twin


class AdamOptimizer:
    """Adam over a fixed list of parameter arrays (updated in place)."""

    def __init__(self, params: list[np.ndarray], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8):
        if lr <= 0.0:
            raise RLError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        """Apply one descent step given gradients matching ``params``."""
        if len(grads) != len(self.params):
            raise RLError("gradient list length mismatch")
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
