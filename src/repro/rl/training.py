"""Training loops for the exploit-generation agents."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.log import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as obs_span
from repro.rl.ddpg import DdpgAgent
from repro.rl.reinforce import ReinforceAgent

__all__ = ["EpisodeStats", "TrainingResult", "train_reinforce", "train_ddpg"]

_log = get_logger(__name__)

#: Episode-return histogram buckets: returns span large negative (crash /
#: detection penalties) through positive deviation rewards.
_RETURN_BUCKETS = (
    -10_000.0, -1_000.0, -100.0, -10.0, -1.0, 0.0,
    1.0, 10.0, 100.0, 1_000.0, 10_000.0,
)


def _record_episode(algo: str, stats: EpisodeStats) -> None:
    """Fold one episode into the registry (and the debug log)."""
    registry = get_registry()
    registry.counter("rl.episodes", algo=algo).inc()
    if stats.crashed:
        registry.counter("rl.crashes", algo=algo).inc()
    if stats.detected:
        registry.counter("rl.detections", algo=algo).inc()
    registry.histogram(
        "rl.episode_return", buckets=_RETURN_BUCKETS, algo=algo
    ).observe(stats.total_reward)
    registry.histogram(
        "rl.episode_steps", algo=algo
    ).observe(float(stats.steps))
    _log.debug(
        "%s episode %d: return %.2f, %d steps, crashed=%s detected=%s",
        algo, stats.episode, stats.total_reward, stats.steps,
        stats.crashed, stats.detected,
    )


@dataclass
class EpisodeStats:
    """Summary of one training episode."""

    episode: int
    total_reward: float
    steps: int
    crashed: bool
    detected: bool
    final_info: dict = field(default_factory=dict)


@dataclass
class TrainingResult:
    """History of a training run."""

    episodes: list[EpisodeStats] = field(default_factory=list)

    @property
    def returns(self) -> np.ndarray:
        """Episode returns in order."""
        return np.asarray([e.total_reward for e in self.episodes])

    @property
    def best_return(self) -> float:
        """Best episode return (−inf if no episodes)."""
        return float(self.returns.max()) if self.episodes else float("-inf")

    def improved(self, first_k: int = 5, last_k: int = 5) -> bool:
        """Whether late-training returns beat early-training returns."""
        r = self.returns
        if len(r) < first_k + last_k:
            return False
        return float(r[-last_k:].mean()) > float(r[:first_k].mean())


def train_reinforce(
    env, agent: ReinforceAgent, episodes: int = 50,
    callback=None,
) -> TrainingResult:
    """On-policy training: one policy update per episode."""
    result = TrainingResult()
    with obs_span("rl.train", algo="reinforce", episodes=episodes) as train_span:
        for episode_idx in range(episodes):
            with obs_span("rl.episode", algo="reinforce", episode=episode_idx):
                obs = env.reset()
                trajectory = []
                total = 0.0
                info: dict = {}
                done = False
                while not done:
                    action = agent.act(obs)
                    next_obs, reward, done, info = env.step(action)
                    trajectory.append((obs, action, reward))
                    total += reward
                    obs = next_obs
                agent.update(trajectory)
            stats = EpisodeStats(
                episode=episode_idx, total_reward=total, steps=info.get("steps", 0),
                crashed=info.get("crashed", False),
                detected=info.get("detected", False), final_info=info,
            )
            result.episodes.append(stats)
            _record_episode("reinforce", stats)
            if callback is not None:
                callback(stats)
        train_span.set("best_return", result.best_return)
    return result


def train_ddpg(
    env, agent: DdpgAgent, episodes: int = 50,
    updates_per_step: int = 1, callback=None,
) -> TrainingResult:
    """Off-policy training: replay updates every environment step."""
    result = TrainingResult()
    with obs_span("rl.train", algo="ddpg", episodes=episodes) as train_span:
        for episode_idx in range(episodes):
            with obs_span("rl.episode", algo="ddpg", episode=episode_idx):
                obs = env.reset()
                total = 0.0
                info: dict = {}
                done = False
                while not done:
                    action = agent.act(obs)
                    next_obs, reward, done, info = env.step(action)
                    agent.observe(obs, action, reward, next_obs, done)
                    for _ in range(updates_per_step):
                        agent.update()
                    total += reward
                    obs = next_obs
                agent.end_episode()
            stats = EpisodeStats(
                episode=episode_idx, total_reward=total, steps=info.get("steps", 0),
                crashed=info.get("crashed", False),
                detected=info.get("detected", False), final_info=info,
            )
            result.episodes.append(stats)
            _record_episode("ddpg", stats)
            if callback is not None:
                callback(stats)
        train_span.set("best_return", result.best_return)
    return result
