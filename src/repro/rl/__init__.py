"""Reinforcement-learning exploit generation (Gym-like envs + numpy agents)."""

from repro.rl.ddpg import DdpgAgent, DdpgConfig
from repro.rl.env import EnvConfig, RavEnvBase, StepResult
from repro.rl.envs import ControlledCrashEnv, PathDeviationEnv
from repro.rl.networks import MLP, AdamOptimizer
from repro.rl.reinforce import ReinforceAgent, ReinforceConfig
from repro.rl.replay import ReplayBuffer
from repro.rl.spaces import Box
from repro.rl.training import (
    EpisodeStats,
    TrainingResult,
    train_ddpg,
    train_reinforce,
)

__all__ = [
    "AdamOptimizer",
    "Box",
    "ControlledCrashEnv",
    "DdpgAgent",
    "DdpgConfig",
    "EnvConfig",
    "EpisodeStats",
    "MLP",
    "PathDeviationEnv",
    "RavEnvBase",
    "ReinforceAgent",
    "ReinforceConfig",
    "ReplayBuffer",
    "StepResult",
    "TrainingResult",
    "train_ddpg",
    "train_reinforce",
]
