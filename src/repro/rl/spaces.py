"""Observation/action spaces (a minimal Gym-compatible subset)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import RLError
from repro.utils.rng import make_rng

__all__ = ["Box"]


class Box:
    """A bounded continuous space ``low <= x <= high`` of fixed shape."""

    def __init__(self, low, high, shape: tuple[int, ...] | None = None,
                 seed: int | None = 0):
        low = np.asarray(low, dtype=float)
        high = np.asarray(high, dtype=float)
        if shape is not None:
            low = np.broadcast_to(low, shape).astype(float)
            high = np.broadcast_to(high, shape).astype(float)
        if low.shape != high.shape:
            raise RLError(f"shape mismatch: {low.shape} vs {high.shape}")
        if np.any(low > high):
            raise RLError("Box requires low <= high elementwise")
        self.low = low.copy()
        self.high = high.copy()
        self._rng = make_rng(seed)

    @property
    def shape(self) -> tuple[int, ...]:
        """Dimensions of the space."""
        return self.low.shape

    @property
    def dim(self) -> int:
        """Flattened dimensionality."""
        return int(np.prod(self.low.shape)) if self.low.shape else 1

    def contains(self, x) -> bool:
        """Whether ``x`` lies inside the box (inclusive)."""
        x = np.asarray(x, dtype=float)
        return bool(
            x.shape == self.low.shape
            and np.all(x >= self.low - 1e-9)
            and np.all(x <= self.high + 1e-9)
        )

    def clip(self, x) -> np.ndarray:
        """Project ``x`` onto the box."""
        return np.clip(np.asarray(x, dtype=float), self.low, self.high)

    def sample(self) -> np.ndarray:
        """Uniform random point inside the box."""
        return self._rng.uniform(self.low, self.high)

    def seed(self, seed: int) -> None:
        """Re-seed the sampler."""
        self._rng = make_rng(seed)
