"""Experience replay buffer for off-policy agents (DDPG)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import RLError
from repro.utils.rng import make_rng

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity uniform replay over (s, a, r, s', done) tuples."""

    def __init__(self, capacity: int, obs_dim: int, act_dim: int,
                 seed: int | None = 0):
        if capacity < 1:
            raise RLError("capacity must be >= 1")
        self.capacity = capacity
        self._obs = np.zeros((capacity, obs_dim))
        self._act = np.zeros((capacity, act_dim))
        self._rew = np.zeros(capacity)
        self._next_obs = np.zeros((capacity, obs_dim))
        self._done = np.zeros(capacity)
        self._size = 0
        self._head = 0
        self._rng = make_rng(seed)

    def __len__(self) -> int:
        return self._size

    def add(self, obs, act, rew: float, next_obs, done: bool) -> None:
        """Store one transition (overwrites the oldest when full)."""
        i = self._head
        self._obs[i] = obs
        self._act[i] = np.atleast_1d(act)
        self._rew[i] = rew
        self._next_obs[i] = next_obs
        self._done[i] = float(done)
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int):
        """Uniform minibatch as (obs, act, rew, next_obs, done) arrays."""
        if self._size == 0:
            raise RLError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, self._size, size=batch_size)
        return (
            self._obs[idx], self._act[idx], self._rew[idx],
            self._next_obs[idx], self._done[idx],
        )
