"""REINFORCE with a value baseline — the basic policy-gradient method.

The paper opts "for a policy gradient method over the conventional
Q-learning algorithm" to handle the continuous action space; REINFORCE is
the simplest member of that family and serves as the light agent for
quick exploit searches and tests. The Gaussian policy outputs a mean in
[-1, 1] (scaled to the action limit) with a state-independent learnable
log-std.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_registry
from repro.rl.networks import MLP, AdamOptimizer
from repro.utils.rng import make_rng

__all__ = ["ReinforceConfig", "ReinforceAgent"]


@dataclass
class ReinforceConfig:
    """Hyper-parameters for the REINFORCE agent."""

    hidden: int = 32
    policy_lr: float = 3e-3
    value_lr: float = 1e-2
    gamma: float = 0.99
    init_log_std: float = -0.7
    min_log_std: float = -3.0
    max_log_std: float = 0.5
    seed: int = 0


class ReinforceAgent:
    """Monte-Carlo policy gradient over one continuous action dimension."""

    def __init__(self, obs_dim: int, action_limit: float,
                 config: ReinforceConfig | None = None):
        self.config = config or ReinforceConfig()
        self.obs_dim = obs_dim
        self.action_limit = action_limit
        c = self.config
        self.policy = MLP([obs_dim, c.hidden, c.hidden, 1],
                          output_activation="tanh", seed=c.seed)
        self.value = MLP([obs_dim, c.hidden, 1], seed=c.seed + 1)
        self.log_std = np.array([c.init_log_std])
        self._policy_opt = AdamOptimizer(
            self.policy.parameters() + [self.log_std], lr=c.policy_lr
        )
        self._value_opt = AdamOptimizer(self.value.parameters(), lr=c.value_lr)
        self._rng = make_rng(c.seed)

    # ------------------------------------------------------------------ #
    def act(self, obs: np.ndarray, deterministic: bool = False) -> np.ndarray:
        """Sample (or take the mean of) the policy action for ``obs``."""
        mean = self.policy.forward(np.asarray(obs, dtype=float))
        if deterministic:
            raw = mean
        else:
            std = np.exp(self.log_std)
            raw = mean + std * self._rng.standard_normal(1)
        return np.clip(raw, -1.0, 1.0) * self.action_limit

    # ------------------------------------------------------------------ #
    def update(self, episode) -> dict[str, float]:
        """One policy-gradient step from a finished episode.

        ``episode`` is a list of (obs, action, reward) tuples; actions are
        in environment units (they are unscaled internally).
        """
        get_registry().counter("rl.policy_updates", algo="reinforce").inc()
        c = self.config
        observations = np.vstack([np.asarray(o, dtype=float) for o, _, _ in episode])
        actions = np.vstack(
            [np.atleast_1d(a) / self.action_limit for _, a, _ in episode]
        )
        rewards = np.array([r for _, _, r in episode])

        # Discounted returns.
        returns = np.zeros_like(rewards)
        running = 0.0
        for t in reversed(range(len(rewards))):
            running = rewards[t] + c.gamma * running
            returns[t] = running

        # Baseline (value net) and advantages.
        values = self.value.forward(observations, cache=True).reshape(-1)
        advantages = returns - values
        if advantages.std() > 1e-8:
            advantages = (advantages - advantages.mean()) / advantages.std()

        # Value regression step: grad of 0.5*(v - R)^2.
        value_grad = (values - returns).reshape(-1, 1) / len(rewards)
        w_grads, b_grads, _ = self.value.backward(value_grad)
        self._value_opt.step(self._interleave(w_grads, b_grads))

        # Policy gradient: d(-logpi * A)/d(mean) for a Gaussian policy.
        means = self.policy.forward(observations, cache=True)
        std = np.exp(self.log_std)
        z = (actions - means) / std
        # d(-logpi)/d(mean) = -(a - mu)/std^2; weight by advantage.
        grad_mean = (-(z / std) * advantages.reshape(-1, 1)) / len(rewards)
        w_grads, b_grads, _ = self.policy.backward(grad_mean)
        # d(-logpi)/d(log_std) = (1 - z^2); weight by advantage.
        grad_log_std = np.atleast_1d(
            np.mean((1.0 - z * z) * advantages.reshape(-1, 1), axis=0)
        )
        self._policy_opt.step(
            self._interleave(w_grads, b_grads) + [grad_log_std]
        )
        self.log_std[:] = np.clip(self.log_std, c.min_log_std, c.max_log_std)
        return {
            "return": float(rewards.sum()),
            "mean_advantage": float(advantages.mean()),
            "log_std": float(self.log_std[0]),
        }

    @staticmethod
    def _interleave(w_grads, b_grads):
        grads = []
        for w, b in zip(w_grads, b_grads):
            grads.extend((w, b))
        return grads
