"""Gym-style RL environment base over the simulated RAV.

Matches the paper's training setup (Section V-A): the agent acts every
0.3 s ("the agent takes a single action in each step function every 0.3
seconds and injects a variable manipulation of the target state variable"),
episodes run up to 300 steps, and each reset lands, disarms and re-arms
the vehicle at the mission start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.injection import VariableManipulator
from repro.exceptions import RLError
from repro.firmware.vehicle import Vehicle
from repro.rl.spaces import Box
from repro.sim.config import SimConfig

__all__ = ["EnvConfig", "StepResult", "RavEnvBase"]


@dataclass
class EnvConfig:
    """Shared environment settings.

    ``physics_hz`` defaults to 100 Hz for training speed (the control
    stack is rate-agnostic); ``agent_dt`` is the paper's 0.3 s action
    period; ``max_episode_steps`` the paper's 300.
    """

    target_variable: str = "PIDR.INTEG"
    agent_dt: float = 0.3
    max_episode_steps: int = 300
    physics_hz: float = 100.0
    action_limit: float = 0.08
    manipulation_mode: str = "delta"
    detector_penalty: float = -100.0
    seed: int = 0
    use_detector: bool = False
    #: Alarm threshold of the in-loop CI detector, calibrated to the
    #: noiseless truth-state training environment (benign missions score
    #: ~0 there; paper-scale gradual manipulations a few hundred). The
    #: production detector keeps its own 400 000 threshold.
    detector_threshold: float = 1000.0


class StepResult(tuple):
    """(observation, reward, done, info) with attribute access."""

    def __new__(cls, observation, reward, done, info):
        return super().__new__(cls, (observation, reward, done, info))

    @property
    def observation(self):
        return self[0]

    @property
    def reward(self):
        return self[1]

    @property
    def done(self):
        return self[2]

    @property
    def info(self):
        return self[3]


class RavEnvBase:
    """Common plumbing: vehicle lifecycle, action actuation, detectors.

    Subclasses define the mission/scene (:meth:`_setup_vehicle`), the
    observation (:meth:`_observe`) and the reward (:meth:`_reward`,
    implementing Eq. 4 or Eq. 5).
    """

    def __init__(self, config: EnvConfig | None = None):
        self.config = config or EnvConfig()
        if self.config.agent_dt <= 0.0:
            raise RLError("agent_dt must be positive")
        self.action_space = Box(
            low=-self.config.action_limit, high=self.config.action_limit,
            shape=(1,), seed=self.config.seed,
        )
        self.observation_space: Box = self._make_observation_space()
        self.vehicle: Vehicle | None = None
        self.manipulator: VariableManipulator | None = None
        self.detector = None
        self._episode_steps = 0
        self._episode_count = 0

    # -- subclass API --------------------------------------------------- #
    def _make_observation_space(self) -> Box:
        raise NotImplementedError

    def _setup_vehicle(self, seed: int) -> Vehicle:
        """Create a vehicle, fly it to the exploit start, return it."""
        raise NotImplementedError

    def _observe(self) -> np.ndarray:
        raise NotImplementedError

    def _reward(self) -> tuple[float, bool]:
        """Return (reward, terminal) for the state after the last action."""
        raise NotImplementedError

    def _make_detector(self):
        """Build the in-loop detector (only when config.use_detector)."""
        from repro.defenses.control_invariants import ControlInvariantsDetector

        return ControlInvariantsDetector(
            self.vehicle.config.airframe,
            threshold=self.config.detector_threshold,
        )

    # -- Gym API --------------------------------------------------------- #
    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial observation."""
        self._episode_count += 1
        seed = self.config.seed + self._episode_count
        self.vehicle = self._setup_vehicle(seed)
        view = self.vehicle.compromised_view()
        self.manipulator = VariableManipulator(
            view, self.config.target_variable,
            mode=self.config.manipulation_mode,
        )
        if self.config.use_detector:
            self.detector = self._make_detector()
            self.detector.attach(self.vehicle)
        else:
            self.detector = None
        self._episode_steps = 0
        self._post_reset()
        return self._observe()

    def _post_reset(self) -> None:
        """Subclass hook after the vehicle is staged (default: nothing)."""

    def step(self, action) -> StepResult:
        """Apply one manipulation, advance ``agent_dt`` of flight."""
        if self.vehicle is None:
            raise RLError("call reset() before step()")
        action = np.asarray(action, dtype=float).reshape(-1)
        clipped = float(self.action_space.clip(action)[0])
        self.manipulator.apply(clipped)

        cycles = max(1, int(round(self.config.agent_dt * self.config.physics_hz)))
        for _ in range(cycles):
            if self.vehicle.sim.vehicle.crashed:
                break
            self.vehicle.step()
        self._episode_steps += 1

        reward, terminal = self._reward()
        done = terminal or self._episode_steps >= self.config.max_episode_steps
        info = {
            "steps": self._episode_steps,
            "crashed": self.vehicle.sim.vehicle.crashed,
            "detected": bool(self.detector is not None and self.detector.alarmed),
            "time": self.vehicle.sim.time,
        }
        if self.vehicle.sim.vehicle.crashed:
            done = True
        if self.detector is not None and self.detector.alarmed:
            # The "-inf if an anomaly is detected" term, implemented as a
            # large negative penalty that also terminates the episode.
            reward = self.config.detector_penalty
            done = True
        return StepResult(self._observe(), float(reward), bool(done), info)
